//! Fault plans and composable fault schedules: what Stabl's observer
//! processes inject and when.
//!
//! Terminology follows the paper's Table 1:
//!
//! * **Crash** — a node is halted and never restarted during the
//!   experiment (the observer kills the blockchain process).
//! * **Transient failure** — a node is halted and later restarted with
//!   the same identity.
//! * **Partition** — a communication failure between subsets of nodes
//!   (the observer installs netfilter drop rules, later removed).
//!
//! A [`FaultPlan`] names one such scenario; a [`FaultSchedule`] is an
//! ordered list of timed [`FaultAction`]s, so message-level degradation
//! ([`FaultAction::LinkDegrade`]), slowdowns and whole-node faults
//! compose in a single run — the combinations real outages are made of.
//! Validation returns a typed [`FaultError`] (use
//! [`FaultSchedule::apply`]); the panicking [`FaultSchedule::schedule`]
//! wrapper keeps the old call sites working.
//!
//! `f` denotes the number of failures injected; `t_B` the maximum number
//! of failures blockchain `B` claims to tolerate; `n` the network size.

use std::collections::BTreeSet;
use std::fmt;

use stabl_sim::{LinkFault, NodeId, PartitionRule, Protocol, SimDuration, SimTime, Simulation};

/// Why a fault schedule failed validation.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultError {
    /// A fault's end time precedes its start time. `what` is the
    /// human-readable description of the inversion.
    InvertedWindow {
        /// Which inversion (e.g. "recovery precedes the failure").
        what: &'static str,
        /// The window start.
        start: SimTime,
        /// The (inverted) window end.
        end: SimTime,
    },
    /// A victim node id does not exist in the simulated network.
    VictimOutOfRange {
        /// The offending node.
        node: NodeId,
        /// The network size.
        n: usize,
    },
    /// The same node is targeted by more than one action (or twice by
    /// one action) — ambiguous schedules are rejected rather than
    /// silently overlapped.
    DuplicateVictim {
        /// The node named more than once.
        node: NodeId,
    },
    /// A link-fault probability lies outside `[0, 1]`.
    InvalidProbability {
        /// Which probability ("drop", "duplicate" or "reorder").
        what: &'static str,
        /// The offending value.
        p: f64,
    },
    /// A fault's window has zero length: it starts and ends at the same
    /// instant, so it could never engage. Hand-written schedules never
    /// do this, but search-generated ones would silently waste
    /// evaluation budget on such no-ops, so they are rejected.
    EmptyWindow {
        /// Which window (e.g. "transient outage").
        what: &'static str,
        /// The degenerate instant.
        at: SimTime,
    },
    /// An action starts at or past the run horizon (or its window ends
    /// past it): it could never engage (or never lift) inside the run.
    /// Only [`FaultSchedule::validate_within`] checks this — plain
    /// [`FaultSchedule::validate`] has no horizon to check against.
    OutOfHorizon {
        /// Which mark (e.g. "crash", "partition heal").
        what: &'static str,
        /// The offending instant.
        at: SimTime,
        /// The run horizon.
        horizon: SimTime,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::InvertedWindow { what, start, end } => {
                write!(f, "{what} (window {start}..{end} is inverted)")
            }
            FaultError::VictimOutOfRange { node, n } => {
                write!(f, "victim {node} outside the {n}-node network")
            }
            FaultError::DuplicateVictim { node } => {
                write!(f, "victim {node} appears in more than one fault action")
            }
            FaultError::InvalidProbability { what, p } => {
                write!(f, "link-fault {what} probability {p} outside [0, 1]")
            }
            FaultError::EmptyWindow { what, at } => {
                write!(f, "{what} window at {at} has zero length")
            }
            FaultError::OutOfHorizon { what, at, horizon } => {
                write!(f, "{what} at {at} lies outside the {horizon} run horizon")
            }
        }
    }
}

/// A half-open time window `[at, until)` a fault is active in.
///
/// The one place window arithmetic lives: both the hand-written
/// composed schedules (`ext_chaos`) and the adversary search's genome
/// operators build their windows through this type instead of repeating
/// the `quarter = (until - at) / 4` integer arithmetic inline.
///
/// # Examples
///
/// ```
/// use stabl::FaultWindow;
/// use stabl_sim::SimTime;
///
/// let w = FaultWindow::new(SimTime::from_secs(10), SimTime::from_secs(30));
/// // The second quarter of the window:
/// let flap = w.slice(1, 4);
/// assert_eq!(flap.at, SimTime::from_secs(15));
/// assert_eq!(flap.until, SimTime::from_secs(20));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultWindow {
    /// Window start (inclusive).
    pub at: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

impl FaultWindow {
    /// A window spanning `[at, until)`. No validation happens here;
    /// degenerate windows are rejected by [`FaultSchedule::validate`].
    pub fn new(at: SimTime, until: SimTime) -> FaultWindow {
        FaultWindow { at, until }
    }

    /// The window length (zero if inverted).
    pub fn duration(&self) -> SimDuration {
        if self.until <= self.at {
            return SimDuration::ZERO;
        }
        self.until - self.at
    }

    /// `true` if the window selects no time at all (`until <= at`).
    pub fn is_degenerate(&self) -> bool {
        self.until <= self.at
    }

    /// Slice `i` of `k` equal parts (integer microseconds; the final
    /// slice absorbs the division remainder so `slice(k - 1, k)` always
    /// ends exactly at `until`).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or `i >= k`.
    pub fn slice(&self, i: usize, k: usize) -> FaultWindow {
        assert!(k > 0 && i < k, "slice {i} of {k} is out of range");
        let part = self.duration().as_micros() / k as u64;
        let start = self.at + SimDuration::from_micros(part * i as u64);
        let end = if i + 1 == k {
            self.until
        } else {
            self.at + SimDuration::from_micros(part * (i as u64 + 1))
        };
        FaultWindow::new(start, end)
    }
}

impl std::error::Error for FaultError {}

/// A declarative failure-injection plan for one run (one named scenario
/// of the paper). Convert into a [`FaultSchedule`] to compose several.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum FaultPlan {
    /// The baseline: no failures.
    #[default]
    None,
    /// Crash `nodes` permanently at `at`.
    Crash {
        /// The victims.
        nodes: Vec<NodeId>,
        /// Injection time.
        at: SimTime,
    },
    /// Halt `nodes` at `at` and restart them at `recover_at`.
    Transient {
        /// The victims.
        nodes: Vec<NodeId>,
        /// Injection time.
        at: SimTime,
        /// Restart time.
        recover_at: SimTime,
    },
    /// Disconnect `nodes` from the rest of the network between `at` and
    /// `heal_at`.
    Partition {
        /// The isolated group.
        nodes: Vec<NodeId>,
        /// Partition start.
        at: SimTime,
        /// Partition end.
        heal_at: SimTime,
    },
    /// Slow `nodes` down between `at` and `until`: every message they
    /// send gains `extra` delay. A slow-but-correct node — the paper's
    /// §4 discussion of how a single slow node affects leader-based
    /// chains but not leaderless DBFT.
    Slowdown {
        /// The slowed nodes.
        nodes: Vec<NodeId>,
        /// Extra outbound delay while slowed.
        extra: SimDuration,
        /// Slowdown start.
        at: SimTime,
        /// Slowdown end.
        until: SimTime,
    },
}

impl FaultPlan {
    /// The nodes this plan touches.
    pub fn victims(&self) -> &[NodeId] {
        match self {
            FaultPlan::None => &[],
            FaultPlan::Crash { nodes, .. }
            | FaultPlan::Transient { nodes, .. }
            | FaultPlan::Partition { nodes, .. }
            | FaultPlan::Slowdown { nodes, .. } => nodes,
        }
    }

    /// Validates and schedules the plan's events on a simulation.
    ///
    /// # Errors
    ///
    /// See [`FaultSchedule::apply`].
    pub fn apply<P: Protocol>(&self, sim: &mut Simulation<P>) -> Result<(), FaultError> {
        FaultSchedule::from(self.clone()).apply(sim)
    }

    /// Schedules the plan's events on a simulation (the role of Stabl's
    /// observer processes). Thin wrapper around [`FaultPlan::apply`].
    ///
    /// # Panics
    ///
    /// Panics if a transient/partition plan recovers before it starts,
    /// or if a victim id is outside the network.
    pub fn schedule<P: Protocol>(&self, sim: &mut Simulation<P>) {
        // stabl-lint: allow(R-003, documented panicking wrapper preserving the legacy FaultPlan::schedule message contract; apply() is the typed-error path)
        self.apply(sim).unwrap_or_else(|e| panic!("{e}"));
    }
}

/// One timed fault injection inside a [`FaultSchedule`].
///
/// The first four variants mirror [`FaultPlan`]; `LinkDegrade` adds the
/// message-level dimension (probabilistic loss, duplication, reordering
/// and asymmetric partitions — see [`LinkFault`]).
#[derive(Clone, Debug, PartialEq)]
pub enum FaultAction {
    /// Crash `nodes` permanently at `at`.
    Crash {
        /// The victims.
        nodes: Vec<NodeId>,
        /// Injection time.
        at: SimTime,
    },
    /// Halt `nodes` at `at` and restart them at `recover_at`.
    Transient {
        /// The victims.
        nodes: Vec<NodeId>,
        /// Injection time.
        at: SimTime,
        /// Restart time.
        recover_at: SimTime,
    },
    /// Disconnect `nodes` from the rest of the network between `at` and
    /// `heal_at`.
    Partition {
        /// The isolated group.
        nodes: Vec<NodeId>,
        /// Partition start.
        at: SimTime,
        /// Partition end.
        heal_at: SimTime,
    },
    /// Slow `nodes` down between `at` and `until`.
    Slowdown {
        /// The slowed nodes.
        nodes: Vec<NodeId>,
        /// Extra outbound delay while slowed.
        extra: SimDuration,
        /// Slowdown start.
        at: SimTime,
        /// Slowdown end.
        until: SimTime,
    },
    /// Install a message-level link fault between `at` and `until`.
    LinkDegrade {
        /// The drop/duplicate/reorder rule.
        fault: LinkFault,
        /// Installation time.
        at: SimTime,
        /// Removal time.
        until: SimTime,
    },
}

impl FaultAction {
    /// The whole-node victims of this action (empty for `LinkDegrade`,
    /// whose targets are directed links, not nodes).
    pub fn victims(&self) -> &[NodeId] {
        match self {
            FaultAction::Crash { nodes, .. }
            | FaultAction::Transient { nodes, .. }
            | FaultAction::Partition { nodes, .. }
            | FaultAction::Slowdown { nodes, .. } => nodes,
            FaultAction::LinkDegrade { .. } => &[],
        }
    }

    /// Every node id this action references (victims, plus the link
    /// groups of a `LinkDegrade`) — used for range validation.
    fn referenced_nodes(&self) -> Vec<NodeId> {
        match self {
            FaultAction::LinkDegrade { fault, .. } => fault
                .from_group()
                .into_iter()
                .chain(fault.to_group())
                .flatten()
                .copied()
                .collect(),
            _ => self.victims().to_vec(),
        }
    }

    /// The injection instant: when the action first touches the run.
    pub fn start(&self) -> SimTime {
        match self {
            FaultAction::Crash { at, .. }
            | FaultAction::Transient { at, .. }
            | FaultAction::Partition { at, .. }
            | FaultAction::Slowdown { at, .. }
            | FaultAction::LinkDegrade { at, .. } => *at,
        }
    }

    /// The action's active window, `None` for a `Crash` (which has an
    /// injection instant but no end).
    pub fn window(&self) -> Option<FaultWindow> {
        match self {
            FaultAction::Crash { .. } => None,
            FaultAction::Transient { at, recover_at, .. } => {
                Some(FaultWindow::new(*at, *recover_at))
            }
            FaultAction::Partition { at, heal_at, .. } => Some(FaultWindow::new(*at, *heal_at)),
            FaultAction::Slowdown { at, until, .. }
            | FaultAction::LinkDegrade { at, until, .. } => Some(FaultWindow::new(*at, *until)),
        }
    }

    /// The same action re-timed to `window` (a `Crash` keeps only the
    /// window start). The one mutation the adversary search's
    /// perturb/tighten operators need.
    #[must_use]
    pub fn with_window(mut self, window: FaultWindow) -> FaultAction {
        match &mut self {
            FaultAction::Crash { at, .. } => *at = window.at,
            FaultAction::Transient { at, recover_at, .. } => {
                *at = window.at;
                *recover_at = window.until;
            }
            FaultAction::Partition { at, heal_at, .. } => {
                *at = window.at;
                *heal_at = window.until;
            }
            FaultAction::Slowdown { at, until, .. }
            | FaultAction::LinkDegrade { at, until, .. } => {
                *at = window.at;
                *until = window.until;
            }
        }
        self
    }

    /// The `what` labels for this action's window errors.
    fn window_label(&self) -> (&'static str, &'static str) {
        match self {
            FaultAction::Crash { .. } => ("crash", "crash"),
            FaultAction::Transient { .. } => ("transient outage", "recovery precedes the failure"),
            FaultAction::Partition { .. } => ("partition", "heal precedes the partition"),
            FaultAction::Slowdown { .. } => ("slowdown", "slowdown ends before it starts"),
            FaultAction::LinkDegrade { .. } => ("link fault", "link fault lifts before it starts"),
        }
    }

    fn validate(&self, n: usize) -> Result<(), FaultError> {
        for node in self.referenced_nodes() {
            if node.index() >= n {
                return Err(FaultError::VictimOutOfRange { node, n });
            }
        }
        let (what, inverted_what) = self.window_label();
        if let Some(window) = self.window() {
            if window.at > window.until {
                return Err(FaultError::InvertedWindow {
                    what: inverted_what,
                    start: window.at,
                    end: window.until,
                });
            }
            if window.at == window.until {
                return Err(FaultError::EmptyWindow {
                    what,
                    at: window.at,
                });
            }
        }
        if let FaultAction::LinkDegrade { fault, .. } = self {
            for (what, p) in [
                ("drop", fault.drop_p()),
                ("duplicate", fault.dup_p()),
                ("reorder", fault.reorder_p()),
            ] {
                if !(0.0..=1.0).contains(&p) {
                    return Err(FaultError::InvalidProbability { what, p });
                }
            }
        }
        Ok(())
    }

    /// Checks the action's marks against a run horizon: every action
    /// must start strictly before the horizon, and windowed actions
    /// must end at or before it (a window that outlives the run could
    /// never lift, and a start past the horizon never engages).
    fn validate_horizon(&self, horizon: SimTime) -> Result<(), FaultError> {
        let (what, _) = self.window_label();
        if self.start() >= horizon {
            return Err(FaultError::OutOfHorizon {
                what,
                at: self.start(),
                horizon,
            });
        }
        if let Some(window) = self.window() {
            if window.until > horizon {
                return Err(FaultError::OutOfHorizon {
                    what,
                    at: window.until,
                    horizon,
                });
            }
        }
        Ok(())
    }

    fn schedule_on<P: Protocol>(&self, sim: &mut Simulation<P>) {
        let n = sim.n();
        match self {
            FaultAction::Crash { nodes, at } => {
                for node in nodes {
                    sim.schedule_crash(*at, *node);
                }
            }
            FaultAction::Transient {
                nodes,
                at,
                recover_at,
            } => {
                for node in nodes {
                    sim.schedule_crash(*at, *node);
                    sim.schedule_restart(*recover_at, *node);
                }
            }
            FaultAction::Partition { nodes, at, heal_at } => {
                let rule = PartitionRule::isolate(nodes.iter().copied(), n);
                sim.schedule_partition(*at, *heal_at, rule);
            }
            FaultAction::Slowdown {
                nodes,
                extra,
                at,
                until,
            } => {
                for node in nodes {
                    sim.schedule_slowdown(*at, *until, *node, *extra);
                }
            }
            FaultAction::LinkDegrade { fault, at, until } => {
                sim.schedule_link_fault(*at, *until, fault.clone());
            }
        }
    }
}

/// An ordered list of timed [`FaultAction`]s injected into one run.
///
/// Replaces the closed [`FaultPlan`] dispatch: any number of
/// whole-node, link-level and slowdown faults compose in one schedule.
/// The old variants remain available as constructors
/// ([`FaultSchedule::crash`], [`FaultSchedule::transient`], …) and via
/// `From<FaultPlan>`.
///
/// # Examples
///
/// ```
/// use stabl::{FaultAction, FaultSchedule};
/// use stabl_sim::{LinkFault, NodeId, SimDuration, SimTime};
///
/// // 5 % loss all run long, plus a flapping one-way partition.
/// let schedule = FaultSchedule::link_degrade(
///     LinkFault::all().with_drop(0.05),
///     SimTime::ZERO,
///     SimTime::from_secs(60),
/// )
/// .and(FaultAction::LinkDegrade {
///     fault: LinkFault::sever([NodeId::new(9)], [NodeId::new(0)]),
///     at: SimTime::from_secs(20),
///     until: SimTime::from_secs(30),
/// });
/// assert_eq!(schedule.actions().len(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FaultSchedule {
    actions: Vec<FaultAction>,
}

impl FaultSchedule {
    /// The empty schedule (the baseline).
    pub fn none() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// A schedule made of `actions`, in injection order.
    pub fn new(actions: Vec<FaultAction>) -> FaultSchedule {
        FaultSchedule { actions }
    }

    /// Crash `nodes` permanently at `at` (old `FaultPlan::Crash`).
    pub fn crash(nodes: Vec<NodeId>, at: SimTime) -> FaultSchedule {
        FaultSchedule::new(vec![FaultAction::Crash { nodes, at }])
    }

    /// Halt `nodes` at `at`, restart at `recover_at` (old
    /// `FaultPlan::Transient`).
    pub fn transient(nodes: Vec<NodeId>, at: SimTime, recover_at: SimTime) -> FaultSchedule {
        FaultSchedule::new(vec![FaultAction::Transient {
            nodes,
            at,
            recover_at,
        }])
    }

    /// Isolate `nodes` between `at` and `heal_at` (old
    /// `FaultPlan::Partition`).
    pub fn partition(nodes: Vec<NodeId>, at: SimTime, heal_at: SimTime) -> FaultSchedule {
        FaultSchedule::new(vec![FaultAction::Partition { nodes, at, heal_at }])
    }

    /// Slow `nodes` down between `at` and `until` (old
    /// `FaultPlan::Slowdown`).
    pub fn slowdown(
        nodes: Vec<NodeId>,
        extra: SimDuration,
        at: SimTime,
        until: SimTime,
    ) -> FaultSchedule {
        FaultSchedule::new(vec![FaultAction::Slowdown {
            nodes,
            extra,
            at,
            until,
        }])
    }

    /// Install a message-level link fault between `at` and `until`.
    pub fn link_degrade(fault: LinkFault, at: SimTime, until: SimTime) -> FaultSchedule {
        FaultSchedule::new(vec![FaultAction::LinkDegrade { fault, at, until }])
    }

    /// Appends `action`, builder-style.
    #[must_use]
    pub fn and(mut self, action: FaultAction) -> FaultSchedule {
        self.actions.push(action);
        self
    }

    /// Appends `action` in place.
    pub fn push(&mut self, action: FaultAction) {
        self.actions.push(action);
    }

    /// The scheduled actions, in injection order.
    pub fn actions(&self) -> &[FaultAction] {
        &self.actions
    }

    /// `true` if the schedule injects nothing (the baseline).
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Every whole-node victim across all actions, in action order.
    pub fn victims(&self) -> Vec<NodeId> {
        self.actions
            .iter()
            .flat_map(|a| a.victims().iter().copied())
            .collect()
    }

    /// Checks the schedule against an `n`-node network without
    /// scheduling anything.
    ///
    /// # Errors
    ///
    /// [`FaultError::VictimOutOfRange`] for node ids ≥ `n`,
    /// [`FaultError::InvertedWindow`] for end-before-start windows,
    /// [`FaultError::EmptyWindow`] for zero-length windows,
    /// [`FaultError::InvalidProbability`] for out-of-range link-fault
    /// probabilities and [`FaultError::DuplicateVictim`] if a node is
    /// targeted by more than one action.
    pub fn validate(&self, n: usize) -> Result<(), FaultError> {
        for action in &self.actions {
            action.validate(n)?;
        }
        let mut seen = BTreeSet::new();
        for action in &self.actions {
            for node in action.victims() {
                if !seen.insert(*node) {
                    return Err(FaultError::DuplicateVictim { node: *node });
                }
            }
        }
        Ok(())
    }

    /// [`FaultSchedule::validate`] plus horizon bounds: every action
    /// must start strictly before `horizon` and every window must end at
    /// or before it. The adversary search validates its genomes through
    /// this so no evaluation budget is spent on actions that could never
    /// engage (or never lift) inside the run.
    ///
    /// # Errors
    ///
    /// Everything [`FaultSchedule::validate`] reports, plus
    /// [`FaultError::OutOfHorizon`] for marks outside `[0, horizon]`.
    pub fn validate_within(&self, n: usize, horizon: SimTime) -> Result<(), FaultError> {
        self.validate(n)?;
        for action in &self.actions {
            action.validate_horizon(horizon)?;
        }
        Ok(())
    }

    /// Validates and schedules every action on the simulation.
    ///
    /// # Errors
    ///
    /// See [`FaultSchedule::validate`]; on error nothing is scheduled.
    pub fn apply<P: Protocol>(&self, sim: &mut Simulation<P>) -> Result<(), FaultError> {
        self.validate(sim.n())?;
        for action in &self.actions {
            action.schedule_on(sim);
        }
        Ok(())
    }

    /// Panicking wrapper around [`FaultSchedule::apply`] for callers
    /// that treat an invalid schedule as a programming error.
    ///
    /// # Panics
    ///
    /// Panics with the [`FaultError`] message on an invalid schedule.
    pub fn schedule<P: Protocol>(&self, sim: &mut Simulation<P>) {
        // stabl-lint: allow(R-003, documented panicking wrapper preserving the legacy FaultPlan::schedule message contract; apply() is the typed-error path)
        self.apply(sim).unwrap_or_else(|e| panic!("{e}"));
    }
}

impl From<FaultPlan> for FaultSchedule {
    fn from(plan: FaultPlan) -> FaultSchedule {
        match plan {
            FaultPlan::None => FaultSchedule::none(),
            FaultPlan::Crash { nodes, at } => FaultSchedule::crash(nodes, at),
            FaultPlan::Transient {
                nodes,
                at,
                recover_at,
            } => FaultSchedule::transient(nodes, at, recover_at),
            FaultPlan::Partition { nodes, at, heal_at } => {
                FaultSchedule::partition(nodes, at, heal_at)
            }
            FaultPlan::Slowdown {
                nodes,
                extra,
                at,
                until,
            } => FaultSchedule::slowdown(nodes, extra, at, until),
        }
    }
}

mod serde_impls {
    //! JSON (de)serialisation so campaign cache keys and artifacts can
    //! carry the full adversity configuration.

    use serde::{Content, DeError, Deserialize, Serialize};

    use super::{FaultAction, FaultSchedule};

    impl Serialize for FaultAction {
        fn to_content(&self) -> Content {
            let mut map: Vec<(String, Content)> = Vec::new();
            let kind = match self {
                FaultAction::Crash { nodes, at } => {
                    map.push(("nodes".to_owned(), nodes.to_content()));
                    map.push(("at".to_owned(), at.to_content()));
                    "crash"
                }
                FaultAction::Transient {
                    nodes,
                    at,
                    recover_at,
                } => {
                    map.push(("nodes".to_owned(), nodes.to_content()));
                    map.push(("at".to_owned(), at.to_content()));
                    map.push(("recover_at".to_owned(), recover_at.to_content()));
                    "transient"
                }
                FaultAction::Partition { nodes, at, heal_at } => {
                    map.push(("nodes".to_owned(), nodes.to_content()));
                    map.push(("at".to_owned(), at.to_content()));
                    map.push(("heal_at".to_owned(), heal_at.to_content()));
                    "partition"
                }
                FaultAction::Slowdown {
                    nodes,
                    extra,
                    at,
                    until,
                } => {
                    map.push(("nodes".to_owned(), nodes.to_content()));
                    map.push(("extra".to_owned(), extra.to_content()));
                    map.push(("at".to_owned(), at.to_content()));
                    map.push(("until".to_owned(), until.to_content()));
                    "slowdown"
                }
                FaultAction::LinkDegrade { fault, at, until } => {
                    map.push(("fault".to_owned(), fault.to_content()));
                    map.push(("at".to_owned(), at.to_content()));
                    map.push(("until".to_owned(), until.to_content()));
                    "link-degrade"
                }
            };
            map.insert(0, ("kind".to_owned(), Content::Str(kind.to_owned())));
            Content::Map(map)
        }
    }

    impl Deserialize for FaultAction {
        fn from_content(content: &Content) -> Result<FaultAction, DeError> {
            let kind: String = serde::__private::field(content, "kind")?;
            match kind.as_str() {
                "crash" => Ok(FaultAction::Crash {
                    nodes: serde::__private::field(content, "nodes")?,
                    at: serde::__private::field(content, "at")?,
                }),
                "transient" => Ok(FaultAction::Transient {
                    nodes: serde::__private::field(content, "nodes")?,
                    at: serde::__private::field(content, "at")?,
                    recover_at: serde::__private::field(content, "recover_at")?,
                }),
                "partition" => Ok(FaultAction::Partition {
                    nodes: serde::__private::field(content, "nodes")?,
                    at: serde::__private::field(content, "at")?,
                    heal_at: serde::__private::field(content, "heal_at")?,
                }),
                "slowdown" => Ok(FaultAction::Slowdown {
                    nodes: serde::__private::field(content, "nodes")?,
                    extra: serde::__private::field(content, "extra")?,
                    at: serde::__private::field(content, "at")?,
                    until: serde::__private::field(content, "until")?,
                }),
                "link-degrade" => Ok(FaultAction::LinkDegrade {
                    fault: serde::__private::field(content, "fault")?,
                    at: serde::__private::field(content, "at")?,
                    until: serde::__private::field(content, "until")?,
                }),
                other => Err(DeError::custom(format!("unknown fault action {other:?}"))),
            }
        }
    }

    impl Serialize for FaultSchedule {
        fn to_content(&self) -> Content {
            self.actions.to_content()
        }
    }

    impl Deserialize for FaultSchedule {
        fn from_content(content: &Content) -> Result<FaultSchedule, DeError> {
            Vec::<FaultAction>::from_content(content).map(FaultSchedule::new)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabl_sim::{Ctx, NodeStatus};

    /// Minimal protocol for exercising fault scheduling.
    struct Idle;
    impl Protocol for Idle {
        type Msg = ();
        type Request = ();
        type Commit = ();
        type Timer = ();
        type Config = ();
        fn new(_: NodeId, _: usize, _: &(), _: &mut Ctx<'_, Self>) -> Self {
            Idle
        }
        fn on_message(&mut self, _: NodeId, _: (), _: &mut Ctx<'_, Self>) {}
        fn on_timer(&mut self, _: (), _: &mut Ctx<'_, Self>) {}
        fn on_request(&mut self, _: (), _: &mut Ctx<'_, Self>) {}
        fn on_restart(&mut self, _: &mut Ctx<'_, Self>) {}
    }

    fn nodes(v: &[u32]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId::new).collect()
    }

    #[test]
    fn crash_plan_halts_permanently() {
        let mut sim = Simulation::<Idle>::new(4, 1, ());
        FaultPlan::Crash {
            nodes: nodes(&[2, 3]),
            at: SimTime::from_secs(1),
        }
        .schedule(&mut sim);
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.status(NodeId::new(2)), NodeStatus::Crashed);
        assert_eq!(sim.status(NodeId::new(3)), NodeStatus::Crashed);
        assert_eq!(sim.status(NodeId::new(0)), NodeStatus::Running);
    }

    #[test]
    fn transient_plan_restarts() {
        let mut sim = Simulation::<Idle>::new(3, 1, ());
        FaultPlan::Transient {
            nodes: nodes(&[1]),
            at: SimTime::from_secs(1),
            recover_at: SimTime::from_secs(2),
        }
        .schedule(&mut sim);
        sim.run_until(SimTime::from_millis(1500));
        assert_eq!(sim.status(NodeId::new(1)), NodeStatus::Crashed);
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.status(NodeId::new(1)), NodeStatus::Running);
    }

    #[test]
    fn partition_plan_installs_and_heals() {
        let mut sim = Simulation::<Idle>::new(4, 1, ());
        FaultPlan::Partition {
            nodes: nodes(&[0]),
            at: SimTime::from_secs(1),
            heal_at: SimTime::from_secs(2),
        }
        .schedule(&mut sim);
        sim.run_until(SimTime::from_millis(1500));
        assert_eq!(sim.network().active_rules(), 1);
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.network().active_rules(), 0);
    }

    #[test]
    fn slowdown_plan_installs_and_expires() {
        let mut sim = Simulation::<Idle>::new(3, 1, ());
        FaultPlan::Slowdown {
            nodes: nodes(&[1]),
            extra: SimDuration::from_millis(200),
            at: SimTime::from_secs(1),
            until: SimTime::from_secs(2),
        }
        .schedule(&mut sim);
        sim.run_until(SimTime::from_millis(1500));
        assert_eq!(
            sim.network().slowdown(NodeId::new(1)),
            SimDuration::from_millis(200)
        );
        sim.run_until(SimTime::from_secs(3));
        assert!(sim.network().slowdown(NodeId::new(1)).is_zero());
    }

    #[test]
    fn victims_accessor() {
        assert!(FaultPlan::None.victims().is_empty());
        let plan = FaultPlan::Crash {
            nodes: nodes(&[1]),
            at: SimTime::ZERO,
        };
        assert_eq!(plan.victims(), &[NodeId::new(1)]);
    }

    #[test]
    #[should_panic(expected = "recovery precedes")]
    fn inverted_transient_rejected() {
        let mut sim = Simulation::<Idle>::new(2, 1, ());
        FaultPlan::Transient {
            nodes: nodes(&[1]),
            at: SimTime::from_secs(2),
            recover_at: SimTime::from_secs(1),
        }
        .schedule(&mut sim);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_victim_rejected() {
        let mut sim = Simulation::<Idle>::new(2, 1, ());
        FaultPlan::Crash {
            nodes: nodes(&[5]),
            at: SimTime::ZERO,
        }
        .schedule(&mut sim);
    }

    #[test]
    fn apply_returns_typed_errors() {
        let mut sim = Simulation::<Idle>::new(2, 1, ());
        let inverted = FaultPlan::Transient {
            nodes: nodes(&[1]),
            at: SimTime::from_secs(2),
            recover_at: SimTime::from_secs(1),
        }
        .apply(&mut sim);
        assert!(matches!(
            inverted,
            Err(FaultError::InvertedWindow {
                what: "recovery precedes the failure",
                ..
            })
        ));
        let out_of_range = FaultPlan::Crash {
            nodes: nodes(&[5]),
            at: SimTime::ZERO,
        }
        .apply(&mut sim);
        assert_eq!(
            out_of_range,
            Err(FaultError::VictimOutOfRange {
                node: NodeId::new(5),
                n: 2
            })
        );
    }

    #[test]
    fn schedule_composes_multiple_actions() {
        let mut sim = Simulation::<Idle>::new(6, 1, ());
        let schedule = FaultSchedule::crash(nodes(&[5]), SimTime::from_secs(1))
            .and(FaultAction::Slowdown {
                nodes: nodes(&[4]),
                extra: SimDuration::from_millis(100),
                at: SimTime::from_secs(1),
                until: SimTime::from_secs(3),
            })
            .and(FaultAction::LinkDegrade {
                fault: LinkFault::all().with_drop(0.1),
                at: SimTime::from_secs(1),
                until: SimTime::from_secs(3),
            });
        assert_eq!(schedule.victims(), nodes(&[5, 4]));
        schedule.apply(&mut sim).expect("valid schedule");
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.status(NodeId::new(5)), NodeStatus::Crashed);
        assert!(!sim.network().slowdown(NodeId::new(4)).is_zero());
        assert_eq!(sim.network().active_link_faults(), 1);
    }

    #[test]
    fn duplicate_victims_across_actions_rejected() {
        let mut sim = Simulation::<Idle>::new(4, 1, ());
        let schedule =
            FaultSchedule::crash(nodes(&[3]), SimTime::from_secs(1)).and(FaultAction::Slowdown {
                nodes: nodes(&[3]),
                extra: SimDuration::from_millis(100),
                at: SimTime::from_secs(2),
                until: SimTime::from_secs(3),
            });
        assert_eq!(
            schedule.apply(&mut sim),
            Err(FaultError::DuplicateVictim {
                node: NodeId::new(3)
            })
        );
        // Nothing was scheduled: the node stays up.
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.status(NodeId::new(3)), NodeStatus::Running);
    }

    #[test]
    fn duplicate_victims_within_one_action_rejected() {
        let schedule = FaultSchedule::crash(nodes(&[1, 1]), SimTime::ZERO);
        assert_eq!(
            schedule.validate(4),
            Err(FaultError::DuplicateVictim {
                node: NodeId::new(1)
            })
        );
    }

    #[test]
    fn invalid_probability_rejected() {
        let schedule = FaultSchedule::link_degrade(
            LinkFault::all().with_drop(1.5),
            SimTime::ZERO,
            SimTime::from_secs(1),
        );
        assert_eq!(
            schedule.validate(4),
            Err(FaultError::InvalidProbability {
                what: "drop",
                p: 1.5
            })
        );
    }

    #[test]
    fn link_degrade_group_out_of_range_rejected() {
        let schedule = FaultSchedule::link_degrade(
            LinkFault::sever([NodeId::new(9)], [NodeId::new(0)]),
            SimTime::ZERO,
            SimTime::from_secs(1),
        );
        assert_eq!(
            schedule.validate(4),
            Err(FaultError::VictimOutOfRange {
                node: NodeId::new(9),
                n: 4
            })
        );
    }

    #[test]
    fn plan_converts_to_schedule() {
        let plan = FaultPlan::Partition {
            nodes: nodes(&[1, 2]),
            at: SimTime::from_secs(1),
            heal_at: SimTime::from_secs(2),
        };
        let schedule: FaultSchedule = plan.into();
        assert_eq!(schedule.actions().len(), 1);
        assert_eq!(schedule.victims(), nodes(&[1, 2]));
        let empty: FaultSchedule = FaultPlan::None.into();
        assert!(empty.is_empty());
    }

    #[test]
    fn error_messages_are_descriptive() {
        let err = FaultError::InvertedWindow {
            what: "heal precedes the partition",
            start: SimTime::from_secs(2),
            end: SimTime::from_secs(1),
        };
        assert!(err.to_string().contains("heal precedes the partition"));
        let err = FaultError::VictimOutOfRange {
            node: NodeId::new(7),
            n: 4,
        };
        assert!(err.to_string().contains("outside the 4-node network"));
    }

    #[test]
    fn empty_transient_window_rejected() {
        let schedule =
            FaultSchedule::transient(nodes(&[1]), SimTime::from_secs(2), SimTime::from_secs(2));
        assert_eq!(
            schedule.validate(4),
            Err(FaultError::EmptyWindow {
                what: "transient outage",
                at: SimTime::from_secs(2)
            })
        );
    }

    #[test]
    fn empty_partition_window_rejected() {
        let schedule =
            FaultSchedule::partition(nodes(&[1]), SimTime::from_secs(3), SimTime::from_secs(3));
        assert_eq!(
            schedule.validate(4),
            Err(FaultError::EmptyWindow {
                what: "partition",
                at: SimTime::from_secs(3)
            })
        );
    }

    #[test]
    fn empty_slowdown_window_rejected() {
        let schedule = FaultSchedule::slowdown(
            nodes(&[1]),
            SimDuration::from_millis(100),
            SimTime::from_secs(1),
            SimTime::from_secs(1),
        );
        assert_eq!(
            schedule.validate(4),
            Err(FaultError::EmptyWindow {
                what: "slowdown",
                at: SimTime::from_secs(1)
            })
        );
    }

    #[test]
    fn empty_link_degrade_window_rejected() {
        let schedule = FaultSchedule::link_degrade(
            LinkFault::all().with_drop(0.1),
            SimTime::from_secs(4),
            SimTime::from_secs(4),
        );
        assert_eq!(
            schedule.validate(4),
            Err(FaultError::EmptyWindow {
                what: "link fault",
                at: SimTime::from_secs(4)
            })
        );
    }

    #[test]
    fn crash_at_any_instant_still_valid() {
        // A crash has no window, so the zero-length rule never applies.
        let schedule = FaultSchedule::crash(nodes(&[1]), SimTime::ZERO);
        assert_eq!(schedule.validate(4), Ok(()));
    }

    #[test]
    fn crash_past_horizon_rejected() {
        let schedule = FaultSchedule::crash(nodes(&[1]), SimTime::from_secs(10));
        // Plain validate has no horizon to check against.
        assert_eq!(schedule.validate(4), Ok(()));
        assert_eq!(
            schedule.validate_within(4, SimTime::from_secs(10)),
            Err(FaultError::OutOfHorizon {
                what: "crash",
                at: SimTime::from_secs(10),
                horizon: SimTime::from_secs(10)
            })
        );
        assert_eq!(schedule.validate_within(4, SimTime::from_secs(11)), Ok(()));
    }

    #[test]
    fn window_end_past_horizon_rejected() {
        let schedule =
            FaultSchedule::partition(nodes(&[1]), SimTime::from_secs(5), SimTime::from_secs(12));
        assert_eq!(
            schedule.validate_within(4, SimTime::from_secs(10)),
            Err(FaultError::OutOfHorizon {
                what: "partition",
                at: SimTime::from_secs(12),
                horizon: SimTime::from_secs(10)
            })
        );
        // Ending exactly at the horizon is fine.
        assert_eq!(schedule.validate_within(4, SimTime::from_secs(12)), Ok(()));
    }

    #[test]
    fn out_of_horizon_message_names_the_horizon() {
        let err = FaultError::OutOfHorizon {
            what: "slowdown",
            at: SimTime::from_secs(40),
            horizon: SimTime::from_secs(30),
        };
        let msg = err.to_string();
        assert!(msg.contains("slowdown"), "{msg}");
        assert!(msg.contains("horizon"), "{msg}");
    }

    #[test]
    fn fault_window_slice_partitions_exactly() {
        let w = FaultWindow::new(SimTime::from_secs(10), SimTime::from_secs(30));
        assert_eq!(w.duration(), SimDuration::from_secs(20));
        assert!(!w.is_degenerate());
        // Slices tile the window: each starts where the previous ended,
        // and the last ends exactly at `until`.
        let mut cursor = w.at;
        for i in 0..4 {
            let s = w.slice(i, 4);
            assert_eq!(s.at, cursor);
            cursor = s.until;
        }
        assert_eq!(cursor, w.until);
        // Degenerate windows slice into degenerate windows, no panic.
        let d = FaultWindow::new(SimTime::from_secs(5), SimTime::from_secs(5));
        assert!(d.is_degenerate());
        assert_eq!(d.slice(0, 3).duration(), SimDuration::ZERO);
    }

    #[test]
    fn action_window_roundtrip() {
        let action = FaultAction::Transient {
            nodes: nodes(&[2]),
            at: SimTime::from_secs(1),
            recover_at: SimTime::from_secs(4),
        };
        let w = action.window().expect("transient has a window");
        assert_eq!(
            w,
            FaultWindow::new(SimTime::from_secs(1), SimTime::from_secs(4))
        );
        assert_eq!(action.start(), SimTime::from_secs(1));
        let moved = action.clone().with_window(FaultWindow::new(
            SimTime::from_secs(2),
            SimTime::from_secs(6),
        ));
        assert_eq!(
            moved.window(),
            Some(FaultWindow::new(
                SimTime::from_secs(2),
                SimTime::from_secs(6)
            ))
        );
        // Crash keeps only the start.
        let crash = FaultAction::Crash {
            nodes: nodes(&[0]),
            at: SimTime::ZERO,
        }
        .with_window(FaultWindow::new(
            SimTime::from_secs(3),
            SimTime::from_secs(9),
        ));
        assert_eq!(crash.start(), SimTime::from_secs(3));
        assert_eq!(crash.window(), None);
    }

    #[test]
    fn schedule_roundtrips_through_json() {
        let schedule =
            FaultSchedule::transient(nodes(&[1, 2]), SimTime::from_secs(1), SimTime::from_secs(2))
                .and(FaultAction::LinkDegrade {
                    fault: LinkFault::all()
                        .with_drop(0.25)
                        .with_reorder(0.5, SimDuration::from_millis(40)),
                    at: SimTime::from_secs(3),
                    until: SimTime::from_secs(4),
                });
        let json = serde_json::to_string(&schedule).expect("serialise");
        let back: FaultSchedule = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, schedule);
    }
}
