//! Fault plans: what Stabl's observer processes inject and when.
//!
//! Terminology follows the paper's Table 1:
//!
//! * **Crash** — a node is halted and never restarted during the
//!   experiment (the observer kills the blockchain process).
//! * **Transient failure** — a node is halted and later restarted with
//!   the same identity.
//! * **Partition** — a communication failure between subsets of nodes
//!   (the observer installs netfilter drop rules, later removed).
//!
//! `f` denotes the number of failures injected; `t_B` the maximum number
//! of failures blockchain `B` claims to tolerate; `n` the network size.

use stabl_sim::{NodeId, PartitionRule, Protocol, SimDuration, SimTime, Simulation};

/// A declarative failure-injection plan for one run.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum FaultPlan {
    /// The baseline: no failures.
    #[default]
    None,
    /// Crash `nodes` permanently at `at`.
    Crash {
        /// The victims.
        nodes: Vec<NodeId>,
        /// Injection time.
        at: SimTime,
    },
    /// Halt `nodes` at `at` and restart them at `recover_at`.
    Transient {
        /// The victims.
        nodes: Vec<NodeId>,
        /// Injection time.
        at: SimTime,
        /// Restart time.
        recover_at: SimTime,
    },
    /// Disconnect `nodes` from the rest of the network between `at` and
    /// `heal_at`.
    Partition {
        /// The isolated group.
        nodes: Vec<NodeId>,
        /// Partition start.
        at: SimTime,
        /// Partition end.
        heal_at: SimTime,
    },
    /// Slow `nodes` down between `at` and `until`: every message they
    /// send gains `extra` delay. A slow-but-correct node — the paper's
    /// §4 discussion of how a single slow node affects leader-based
    /// chains but not leaderless DBFT.
    Slowdown {
        /// The slowed nodes.
        nodes: Vec<NodeId>,
        /// Extra outbound delay while slowed.
        extra: SimDuration,
        /// Slowdown start.
        at: SimTime,
        /// Slowdown end.
        until: SimTime,
    },
}

impl FaultPlan {
    /// The nodes this plan touches.
    pub fn victims(&self) -> &[NodeId] {
        match self {
            FaultPlan::None => &[],
            FaultPlan::Crash { nodes, .. }
            | FaultPlan::Transient { nodes, .. }
            | FaultPlan::Partition { nodes, .. }
            | FaultPlan::Slowdown { nodes, .. } => nodes,
        }
    }

    /// Schedules the plan's events on a simulation (the role of Stabl's
    /// observer processes).
    ///
    /// # Panics
    ///
    /// Panics if a transient/partition plan recovers before it starts,
    /// or if a victim id is outside the network.
    pub fn schedule<P: Protocol>(&self, sim: &mut Simulation<P>) {
        let n = sim.n();
        for node in self.victims() {
            assert!(
                node.index() < n,
                "victim {node} outside the {n}-node network"
            );
        }
        match self {
            FaultPlan::None => {}
            FaultPlan::Crash { nodes, at } => {
                for node in nodes {
                    sim.schedule_crash(*at, *node);
                }
            }
            FaultPlan::Transient {
                nodes,
                at,
                recover_at,
            } => {
                assert!(at <= recover_at, "recovery precedes the failure");
                for node in nodes {
                    sim.schedule_crash(*at, *node);
                    sim.schedule_restart(*recover_at, *node);
                }
            }
            FaultPlan::Partition { nodes, at, heal_at } => {
                assert!(at <= heal_at, "heal precedes the partition");
                let rule = PartitionRule::isolate(nodes.iter().copied(), n);
                sim.schedule_partition(*at, *heal_at, rule);
            }
            FaultPlan::Slowdown {
                nodes,
                extra,
                at,
                until,
            } => {
                assert!(at <= until, "slowdown ends before it starts");
                for node in nodes {
                    sim.schedule_slowdown(*at, *until, *node, *extra);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabl_sim::{Ctx, NodeStatus};

    /// Minimal protocol for exercising fault scheduling.
    struct Idle;
    impl Protocol for Idle {
        type Msg = ();
        type Request = ();
        type Commit = ();
        type Timer = ();
        type Config = ();
        fn new(_: NodeId, _: usize, _: &(), _: &mut Ctx<'_, Self>) -> Self {
            Idle
        }
        fn on_message(&mut self, _: NodeId, _: (), _: &mut Ctx<'_, Self>) {}
        fn on_timer(&mut self, _: (), _: &mut Ctx<'_, Self>) {}
        fn on_request(&mut self, _: (), _: &mut Ctx<'_, Self>) {}
        fn on_restart(&mut self, _: &mut Ctx<'_, Self>) {}
    }

    fn nodes(v: &[u32]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId::new).collect()
    }

    #[test]
    fn crash_plan_halts_permanently() {
        let mut sim = Simulation::<Idle>::new(4, 1, ());
        FaultPlan::Crash {
            nodes: nodes(&[2, 3]),
            at: SimTime::from_secs(1),
        }
        .schedule(&mut sim);
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.status(NodeId::new(2)), NodeStatus::Crashed);
        assert_eq!(sim.status(NodeId::new(3)), NodeStatus::Crashed);
        assert_eq!(sim.status(NodeId::new(0)), NodeStatus::Running);
    }

    #[test]
    fn transient_plan_restarts() {
        let mut sim = Simulation::<Idle>::new(3, 1, ());
        FaultPlan::Transient {
            nodes: nodes(&[1]),
            at: SimTime::from_secs(1),
            recover_at: SimTime::from_secs(2),
        }
        .schedule(&mut sim);
        sim.run_until(SimTime::from_millis(1500));
        assert_eq!(sim.status(NodeId::new(1)), NodeStatus::Crashed);
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.status(NodeId::new(1)), NodeStatus::Running);
    }

    #[test]
    fn partition_plan_installs_and_heals() {
        let mut sim = Simulation::<Idle>::new(4, 1, ());
        FaultPlan::Partition {
            nodes: nodes(&[0]),
            at: SimTime::from_secs(1),
            heal_at: SimTime::from_secs(2),
        }
        .schedule(&mut sim);
        sim.run_until(SimTime::from_millis(1500));
        assert_eq!(sim.network().active_rules(), 1);
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.network().active_rules(), 0);
    }

    #[test]
    fn slowdown_plan_installs_and_expires() {
        let mut sim = Simulation::<Idle>::new(3, 1, ());
        FaultPlan::Slowdown {
            nodes: nodes(&[1]),
            extra: SimDuration::from_millis(200),
            at: SimTime::from_secs(1),
            until: SimTime::from_secs(2),
        }
        .schedule(&mut sim);
        sim.run_until(SimTime::from_millis(1500));
        assert_eq!(
            sim.network().slowdown(NodeId::new(1)),
            SimDuration::from_millis(200)
        );
        sim.run_until(SimTime::from_secs(3));
        assert!(sim.network().slowdown(NodeId::new(1)).is_zero());
    }

    #[test]
    fn victims_accessor() {
        assert!(FaultPlan::None.victims().is_empty());
        let plan = FaultPlan::Crash {
            nodes: nodes(&[1]),
            at: SimTime::ZERO,
        };
        assert_eq!(plan.victims(), &[NodeId::new(1)]);
    }

    #[test]
    #[should_panic(expected = "recovery precedes")]
    fn inverted_transient_rejected() {
        let mut sim = Simulation::<Idle>::new(2, 1, ());
        FaultPlan::Transient {
            nodes: nodes(&[1]),
            at: SimTime::from_secs(2),
            recover_at: SimTime::from_secs(1),
        }
        .schedule(&mut sim);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_victim_rejected() {
        let mut sim = Simulation::<Idle>::new(2, 1, ());
        FaultPlan::Crash {
            nodes: nodes(&[5]),
            at: SimTime::ZERO,
        }
        .schedule(&mut sim);
    }
}
