//! The paper's standard experiments, parameterised and runnable.
//!
//! Every evaluation in the paper compares a baseline 400 s run at
//! 200 TPS against an altered run on the same 10-validator topology:
//!
//! * **Crash** (§4, Fig. 3a/4): `f = t_B` nodes crash at 133 s.
//! * **Transient** (§5, Fig. 3b/5): `f = t_B + 1` nodes halt at 133 s
//!   and restart at 266 s.
//! * **Partition** (§6, Fig. 3c/6): `f = t_B + 1` nodes are disconnected
//!   between 133 s and 266 s.
//! * **Secure client** (§7, Fig. 3d): each transaction goes to 4 nodes
//!   and commits when all 4 observed it, on doubled-vCPU machines.
//!
//! Failures always hit the validators that serve no client (ids 5–9).

use stabl_sim::{ByzantineSpec, LatencyModel, NodeId, SimDuration, SimTime};

use crate::harness::{RunConfig, RunResult};
use crate::metrics::Sensitivity;
use crate::report::{RunSummary, ScenarioReport};
use crate::{Chain, ClientMode, FaultPlan, WorkloadSpec};

/// The four adversarial dimensions of the study (plus the baseline).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ScenarioKind {
    /// No failures (the reference distribution).
    Baseline,
    /// Resilience: `f = t_B` permanent crashes.
    Crash,
    /// Recoverability: `f = t_B + 1` transient node failures.
    Transient,
    /// Partition tolerance: `f = t_B + 1` nodes disconnected.
    Partition,
    /// Byzantine node tolerance: the redundant secure client.
    SecureClient,
}

impl ScenarioKind {
    /// The four altered scenarios, in the paper's figure order.
    pub const ALTERED: [ScenarioKind; 4] = [
        ScenarioKind::Crash,
        ScenarioKind::Transient,
        ScenarioKind::Partition,
        ScenarioKind::SecureClient,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioKind::Baseline => "baseline",
            ScenarioKind::Crash => "crash",
            ScenarioKind::Transient => "transient",
            ScenarioKind::Partition => "partition",
            ScenarioKind::SecureClient => "secure-client",
        }
    }
}

/// Parameters of the paper's experimental campaign.
#[derive(Clone, Debug)]
pub struct PaperSetup {
    /// Validators (the paper: 10).
    pub n: usize,
    /// Master seed.
    pub seed: u64,
    /// Run length (the paper: 400 s).
    pub horizon: SimTime,
    /// Submissions stop shortly before the horizon so the tail can
    /// drain in healthy runs.
    pub submit_until: SimTime,
    /// Failure injection time (the paper: 133 s).
    pub fault_at: SimTime,
    /// Recovery/heal time (the paper: 266 s).
    pub recover_at: SimTime,
    /// Link latency.
    pub latency: LatencyModel,
    /// Liveness grace window.
    pub stall_grace: SimDuration,
}

impl Default for PaperSetup {
    fn default() -> Self {
        PaperSetup {
            n: 10,
            seed: 0xB10C_7357,
            horizon: SimTime::from_secs(400),
            submit_until: SimTime::from_secs(380),
            fault_at: SimTime::from_secs(133),
            recover_at: SimTime::from_secs(266),
            latency: LatencyModel::lan(),
            stall_grace: SimDuration::from_secs(30),
        }
    }
}

impl PaperSetup {
    /// A scaled-down campaign (shorter run) for tests and examples;
    /// faults at 1/3, recovery at 2/3 of the horizon, like the paper.
    pub fn quick(horizon_secs: u64, seed: u64) -> PaperSetup {
        PaperSetup {
            n: 10,
            seed,
            horizon: SimTime::from_secs(horizon_secs),
            submit_until: SimTime::from_secs(horizon_secs.saturating_sub(horizon_secs / 20)),
            fault_at: SimTime::from_secs(horizon_secs / 3),
            recover_at: SimTime::from_secs(horizon_secs * 2 / 3),
            latency: LatencyModel::lan(),
            stall_grace: SimDuration::from_secs(horizon_secs / 13),
        }
    }

    /// The victims of a fault hitting `f` nodes: the trailing validators
    /// (which never receive client transactions).
    ///
    /// # Panics
    ///
    /// Panics if `f` exceeds the non-client validators.
    pub fn victims(&self, f: usize) -> Vec<NodeId> {
        let front = 5.min(self.n);
        assert!(
            f <= self.n - front,
            "cannot fault {f} of {} back nodes",
            self.n - front
        );
        (0..f)
            .map(|i| NodeId::new((self.n - 1 - i) as u32))
            .collect()
    }

    /// Builds the [`RunConfig`] for a chain and scenario.
    pub fn run_config(&self, chain: Chain, kind: ScenarioKind) -> RunConfig {
        let t = chain.tolerated_faults(self.n);
        let faults = match kind {
            ScenarioKind::Baseline | ScenarioKind::SecureClient => FaultPlan::None,
            ScenarioKind::Crash => FaultPlan::Crash {
                nodes: self.victims(t),
                at: self.fault_at,
            },
            ScenarioKind::Transient => FaultPlan::Transient {
                nodes: self.victims(t + 1),
                at: self.fault_at,
                recover_at: self.recover_at,
            },
            ScenarioKind::Partition => FaultPlan::Partition {
                nodes: self.victims(t + 1),
                at: self.fault_at,
                heal_at: self.recover_at,
            },
        };
        let client_mode = match kind {
            ScenarioKind::SecureClient => ClientMode::paper_secure(),
            _ => ClientMode::Single,
        };
        RunConfig {
            n: self.n,
            seed: self.seed,
            latency: self.latency,
            topology: None,
            horizon: self.horizon,
            workload: WorkloadSpec::paper_standard(self.submit_until),
            client_mode,
            faults: faults.into(),
            byzantine: ByzantineSpec::none(),
            byzantine_rpc: Vec::new(),
            retry: None,
            stall_grace: self.stall_grace,
            model_contention: false,
        }
    }

    /// Runs one scenario.
    ///
    /// The secure-client run uses the paper's doubled-vCPU machines.
    pub fn run(&self, chain: Chain, kind: ScenarioKind) -> RunResult {
        let config = self.run_config(chain, kind);
        match kind {
            ScenarioKind::SecureClient => chain.run_with_cpu(&config, 2.0),
            _ => chain.run(&config),
        }
    }

    /// Runs the baseline a given scenario is compared against. The
    /// secure-client experiment ran on doubled-vCPU machines (§3), so
    /// its baseline uses the same hardware.
    pub fn run_baseline(&self, chain: Chain, kind: ScenarioKind) -> RunResult {
        let config = self.run_config(chain, ScenarioKind::Baseline);
        match kind {
            ScenarioKind::SecureClient => chain.run_with_cpu(&config, 2.0),
            _ => chain.run(&config),
        }
    }

    /// Runs baseline + altered and reports the sensitivity score.
    pub fn sensitivity(&self, chain: Chain, kind: ScenarioKind) -> ScenarioReport {
        let baseline = self.run_baseline(chain, kind);
        let altered = self.run(chain, kind);
        report_from_runs(chain, kind, &baseline, &altered)
    }
}

/// Builds a [`ScenarioReport`] from an already-executed pair of runs
/// (lets callers reuse one baseline for several scenarios).
pub fn report_from_runs(
    chain: Chain,
    kind: ScenarioKind,
    baseline: &RunResult,
    altered: &RunResult,
) -> ScenarioReport {
    let sensitivity = if altered.lost_liveness {
        Sensitivity::Infinite
    } else {
        match (baseline.ecdf(), altered.ecdf()) {
            (Ok(b), Ok(a)) => Sensitivity::from_ecdfs(&b, &a),
            _ => Sensitivity::Infinite,
        }
    };
    ScenarioReport {
        chain,
        kind,
        sensitivity,
        baseline: RunSummary::of(baseline),
        altered: RunSummary::of(altered),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victims_avoid_client_nodes() {
        let setup = PaperSetup::default();
        let victims = setup.victims(4);
        assert_eq!(
            victims,
            vec![
                NodeId::new(9),
                NodeId::new(8),
                NodeId::new(7),
                NodeId::new(6)
            ]
        );
        assert!(victims.iter().all(|v| v.index() >= 5));
    }

    #[test]
    fn run_config_fault_sizes_follow_thresholds() {
        let setup = PaperSetup::default();
        let crash = setup.run_config(Chain::Aptos, ScenarioKind::Crash);
        assert_eq!(crash.faults.victims().len(), 3, "f = t for Aptos");
        let crash = setup.run_config(Chain::Avalanche, ScenarioKind::Crash);
        assert_eq!(crash.faults.victims().len(), 1, "f = t for Avalanche");
        let transient = setup.run_config(Chain::Redbelly, ScenarioKind::Transient);
        assert_eq!(transient.faults.victims().len(), 4, "f = t + 1");
        let secure = setup.run_config(Chain::Solana, ScenarioKind::SecureClient);
        assert_eq!(secure.client_mode, ClientMode::paper_secure());
        assert!(secure.faults.is_empty());
    }

    #[test]
    fn quick_setup_is_proportional() {
        let setup = PaperSetup::quick(60, 1);
        assert_eq!(setup.fault_at, SimTime::from_secs(20));
        assert_eq!(setup.recover_at, SimTime::from_secs(40));
        assert!(setup.submit_until < setup.horizon);
    }

    #[test]
    fn scenario_names() {
        assert_eq!(ScenarioKind::Crash.name(), "crash");
        assert_eq!(ScenarioKind::ALTERED.len(), 4);
    }
}
