//! The classic dependability metrics the sensitivity score competes
//! with, and recovery accounting.
//!
//! Prior work (the paper cites BFT-Bench [44]) evaluates fault tolerance
//! with three metrics: *latency* and *throughput* quantify the amplitude
//! of an impact and suit permanent failures; *downtime* quantifies its
//! duration and suits transient ones. §3 argues the sensitivity score
//! subsumes both amplitude and duration; implementing the classics makes
//! that comparison runnable (`metrics_comparison` in `stabl-bench`).

use std::fmt;

use stabl_sim::SimTime;

use crate::metrics::ThroughputSeries;

/// A window argument that does not fit the throughput series it is
/// applied to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowError {
    /// `from_sec >= to_sec`: the window selects no seconds.
    Empty {
        /// The window's start second.
        from_sec: usize,
        /// The window's (exclusive) end second.
        to_sec: usize,
    },
    /// The window reaches past the end of the series.
    OutOfRange {
        /// The window's (exclusive) end second.
        to_sec: usize,
        /// The series length in seconds.
        len: usize,
    },
    /// Fault/recovery marks that are not ordered strictly inside the
    /// series (`fault < recover < len` is required).
    BadMarks {
        /// The fault injection second.
        fault_sec: usize,
        /// The recovery second.
        recover_sec: usize,
        /// The series length in seconds.
        len: usize,
    },
}

impl fmt::Display for WindowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WindowError::Empty { from_sec, to_sec } => {
                write!(f, "empty window [{from_sec}, {to_sec})")
            }
            WindowError::OutOfRange { to_sec, len } => {
                write!(f, "window ends at {to_sec}s but the series has {len}s")
            }
            WindowError::BadMarks {
                fault_sec,
                recover_sec,
                len,
            } => write!(
                f,
                "marks fault={fault_sec}s recover={recover_sec}s outside the {len}s series"
            ),
        }
    }
}

impl std::error::Error for WindowError {}

/// Validates `[from_sec, to_sec)` against a series of `len` seconds.
fn check_window(from_sec: usize, to_sec: usize, len: usize) -> Result<(), WindowError> {
    if from_sec >= to_sec {
        return Err(WindowError::Empty { from_sec, to_sec });
    }
    if to_sec > len {
        return Err(WindowError::OutOfRange { to_sec, len });
    }
    Ok(())
}

/// Seconds with throughput below `threshold_tps` inside the window
/// `[from_sec, to_sec)` — the classic *downtime* metric.
///
/// # Errors
///
/// Fails if the window is empty or out of range.
pub fn downtime_seconds(
    series: &ThroughputSeries,
    threshold_tps: u32,
    from_sec: usize,
    to_sec: usize,
) -> Result<usize, WindowError> {
    check_window(from_sec, to_sec, series.bins().len())?;
    Ok(series.bins()[from_sec..to_sec]
        .iter()
        .filter(|tps| **tps < threshold_tps)
        .count())
}

/// Relative mean-throughput drop of the altered run versus the baseline
/// over `[from_sec, to_sec)`: `1 − altered/baseline`, clamped at zero —
/// the classic *throughput* metric (positive = the alteration hurt).
///
/// # Errors
///
/// Fails if the window is empty or out of range for either series.
pub fn throughput_drop(
    baseline: &ThroughputSeries,
    altered: &ThroughputSeries,
    from_sec: usize,
    to_sec: usize,
) -> Result<f64, WindowError> {
    check_window(from_sec, to_sec, baseline.bins().len())?;
    check_window(from_sec, to_sec, altered.bins().len())?;
    let base = baseline.mean_over(from_sec, to_sec);
    let alt = altered.mean_over(from_sec, to_sec);
    if base <= 0.0 {
        return Ok(0.0);
    }
    Ok((1.0 - alt / base).max(0.0))
}

/// Recovery accounting of one altered run around a fault window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Seconds of (near-)zero throughput during the fault window.
    pub outage_seconds: usize,
    /// Seconds between the recovery mark and the first second back at
    /// (or above) the offered rate; `None` if throughput never returned.
    pub recovery_seconds: Option<usize>,
    /// The highest one-second throughput after the recovery mark (the
    /// catch-up burst).
    pub catchup_peak_tps: u32,
}

impl RecoveryReport {
    /// Measures a run whose faults were injected at `fault_at` and
    /// recovered at `recover_at`, against an offered rate of
    /// `offered_tps`.
    ///
    /// # Errors
    ///
    /// Fails unless `fault_at < recover_at < horizon` of the series.
    pub fn measure(
        series: &ThroughputSeries,
        fault_at: SimTime,
        recover_at: SimTime,
        offered_tps: u32,
    ) -> Result<RecoveryReport, WindowError> {
        let fault_s = (fault_at.as_micros() / 1_000_000) as usize;
        let recover_s = (recover_at.as_micros() / 1_000_000) as usize;
        let end = series.bins().len();
        if fault_s >= recover_s || recover_s >= end {
            return Err(WindowError::BadMarks {
                fault_sec: fault_s,
                recover_sec: recover_s,
                len: end,
            });
        }
        // "Near zero": below 5% of the offered rate.
        let floor = (offered_tps / 20).max(1);
        let outage_seconds = series.bins()[fault_s..recover_s]
            .iter()
            .filter(|tps| **tps < floor)
            .count();
        let recovery_seconds = series
            .first_at_least(recover_s, offered_tps)
            .map(|s| s - recover_s);
        Ok(RecoveryReport {
            outage_seconds,
            recovery_seconds,
            catchup_peak_tps: series.peak_over(recover_s, end),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(bins: &[u32]) -> ThroughputSeries {
        // Build via commit times: bin i gets bins[i] commits.
        let mut times = Vec::new();
        for (i, count) in bins.iter().enumerate() {
            for _ in 0..*count {
                times.push(SimTime::from_millis(i as u64 * 1000 + 500));
            }
        }
        ThroughputSeries::from_commit_times(times, SimTime::from_secs(bins.len() as u64))
    }

    #[test]
    fn downtime_counts_quiet_seconds() {
        let s = series(&[200, 200, 0, 0, 5, 200]);
        assert_eq!(downtime_seconds(&s, 10, 0, 6), Ok(3));
        assert_eq!(downtime_seconds(&s, 10, 0, 2), Ok(0));
    }

    #[test]
    fn throughput_drop_is_relative_and_clamped() {
        let base = series(&[200, 200, 200, 200]);
        let half = series(&[100, 100, 100, 100]);
        let drop = throughput_drop(&base, &half, 0, 4).expect("valid window");
        assert!((drop - 0.5).abs() < 1e-9);
        // An improvement clamps to zero rather than going negative.
        assert_eq!(throughput_drop(&half, &base, 0, 4), Ok(0.0));
    }

    #[test]
    fn recovery_report_reads_the_timeline() {
        // Fault at 2 s, recovery at 5 s, catch-up burst then steady.
        let s = series(&[200, 200, 0, 0, 0, 0, 900, 200, 200, 200]);
        let report = RecoveryReport::measure(&s, SimTime::from_secs(2), SimTime::from_secs(5), 200)
            .expect("valid marks");
        assert_eq!(report.outage_seconds, 3);
        assert_eq!(
            report.recovery_seconds,
            Some(1),
            "back at 200 TPS at second 6"
        );
        assert_eq!(report.catchup_peak_tps, 900);
    }

    #[test]
    fn recovery_never_happening_is_none() {
        let s = series(&[200, 200, 0, 0, 0, 0, 0, 0]);
        let report = RecoveryReport::measure(&s, SimTime::from_secs(2), SimTime::from_secs(5), 200)
            .expect("valid marks");
        assert_eq!(report.recovery_seconds, None);
        assert_eq!(report.catchup_peak_tps, 0);
    }

    #[test]
    fn bad_windows_are_typed_errors() {
        let s = series(&[200, 200]);
        assert_eq!(
            downtime_seconds(&s, 10, 1, 1),
            Err(WindowError::Empty {
                from_sec: 1,
                to_sec: 1
            })
        );
        assert_eq!(
            downtime_seconds(&s, 10, 0, 5),
            Err(WindowError::OutOfRange { to_sec: 5, len: 2 })
        );
        assert_eq!(
            RecoveryReport::measure(&s, SimTime::from_secs(1), SimTime::from_secs(5), 200),
            Err(WindowError::BadMarks {
                fault_sec: 1,
                recover_sec: 5,
                len: 2
            })
        );
        let msg = WindowError::OutOfRange { to_sec: 5, len: 2 }.to_string();
        assert!(msg.contains("5s"), "{msg}");
    }
}
