//! Per-transaction latency decomposition: fixed log-scale histograms
//! and the queueing/consensus/delivery stage split.
//!
//! The paper's sensitivity score compares whole-latency distributions;
//! this module splits each committed transaction's latency into the
//! pipeline stage that produced it, so a sensitivity spike can be
//! attributed to *where* time was spent:
//!
//! * **queueing** — submission to the first arrival of the request at a
//!   validator (client link + retry backoff time),
//! * **consensus** — first arrival to the first commit anywhere in the
//!   network (the protocol's agreement latency),
//! * **delivery** — first commit to the client's resolution instant
//!   (commit propagation to the client's quorum).
//!
//! Histograms use fixed power-of-two buckets in integer microseconds,
//! so aggregation is exact, deterministic and serialisation-stable —
//! no floating-point binning that could differ across platforms.

use stabl_sim::SimDuration;

/// Number of power-of-two buckets: bucket `i` covers `[2^i, 2^(i+1))`
/// microseconds, so the histogram spans 1 µs to ~4295 s — wider than
/// any simulated run.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed log-scale latency histogram (see [`HISTOGRAM_BUCKETS`]).
///
/// # Examples
///
/// ```
/// use stabl::metrics::LatencyHistogram;
/// use stabl_sim::SimDuration;
///
/// let mut h = LatencyHistogram::new();
/// h.record(SimDuration::from_millis(3));
/// h.record(SimDuration::from_millis(200));
/// assert_eq!(h.count(), 2);
/// assert!(h.quantile_upper_micros(0.5) >= 3_000);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LatencyHistogram {
    /// Per-bucket sample counts (`buckets[i]` covers `[2^i, 2^(i+1))` µs;
    /// sub-microsecond samples land in bucket 0).
    pub buckets: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Exact sum of all recorded samples, microseconds.
    pub total_micros: u64,
    /// The largest recorded sample, microseconds.
    pub max_micros: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            total_micros: 0,
            max_micros: 0,
        }
    }

    /// The bucket index a span of `micros` microseconds falls into.
    pub fn bucket_index(micros: u64) -> usize {
        if micros == 0 {
            return 0;
        }
        ((63 - micros.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// The `[low, high)` microsecond bounds of bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= HISTOGRAM_BUCKETS`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < HISTOGRAM_BUCKETS, "bucket {i} out of range");
        if i == 0 {
            (0, 2)
        } else {
            (1u64 << i, 1u64 << (i + 1))
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: SimDuration) {
        let micros = sample.as_micros();
        self.buckets[Self::bucket_index(micros)] += 1;
        self.count += 1;
        self.total_micros = self.total_micros.saturating_add(micros);
        self.max_micros = self.max_micros.max(micros);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean of the recorded samples, seconds (0 when empty).
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.total_micros as f64 / self.count as f64 / 1e6
    }

    /// Upper bound (µs) of the bucket holding the `q`-quantile sample —
    /// a conservative estimate accurate to one power of two. Clamps `q`
    /// into `[0, 1]`; returns 0 when empty.
    pub fn quantile_upper_micros(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.count as f64 * q).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_bounds(i).1;
            }
        }
        Self::bucket_bounds(HISTOGRAM_BUCKETS - 1).1
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.total_micros = self.total_micros.saturating_add(other.total_micros);
        self.max_micros = self.max_micros.max(other.max_micros);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// The per-stage latency decomposition of one run's committed
/// transactions (see the module docs for the stage boundaries).
///
/// Computed for every run regardless of capture level — the stages come
/// from bookkeeping the harness already does, so they are part of the
/// deterministic [`RunResult`] artifact.
///
/// [`RunResult`]: crate::RunResult
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StageLatencies {
    /// Submission → first request arrival at a validator.
    pub queueing: LatencyHistogram,
    /// First arrival → first commit anywhere.
    pub consensus: LatencyHistogram,
    /// First commit → the client's resolution instant.
    pub delivery: LatencyHistogram,
}

impl StageLatencies {
    /// An empty decomposition.
    pub fn new() -> StageLatencies {
        StageLatencies::default()
    }

    /// Records one committed transaction's stage split.
    pub fn record(&mut self, queueing: SimDuration, consensus: SimDuration, delivery: SimDuration) {
        self.queueing.record(queueing);
        self.consensus.record(consensus);
        self.delivery.record(delivery);
    }

    /// Transactions decomposed (every stage histogram has this count).
    pub fn samples(&self) -> u64 {
        self.queueing.count()
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &StageLatencies) {
        self.queueing.merge(&other.queueing);
        self.consensus.merge(&other.consensus);
        self.delivery.merge(&other.delivery);
    }

    /// One human-readable summary line per stage: mean and p99 upper
    /// bound, e.g. for EXPERIMENTS.md tables.
    pub fn summary(&self) -> String {
        let line = |name: &str, h: &LatencyHistogram| {
            format!(
                "{name}: mean {:.4}s p99<={:.4}s max {:.4}s",
                h.mean_secs(),
                h.quantile_upper_micros(0.99) as f64 / 1e6,
                h.max_micros as f64 / 1e6,
            )
        };
        format!(
            "{} | {} | {}",
            line("queueing", &self.queueing),
            line("consensus", &self.consensus),
            line("delivery", &self.delivery),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 0);
        assert_eq!(LatencyHistogram::bucket_index(2), 1);
        assert_eq!(LatencyHistogram::bucket_index(3), 1);
        assert_eq!(LatencyHistogram::bucket_index(4), 2);
        assert_eq!(LatencyHistogram::bucket_index(1_000_000), 19);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), 31);
    }

    #[test]
    fn bucket_bounds_partition_the_axis() {
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            let (low, high) = LatencyHistogram::bucket_bounds(i);
            assert_eq!(LatencyHistogram::bucket_index(low), i);
            assert_eq!(LatencyHistogram::bucket_index(high - 1), i);
            assert_eq!(LatencyHistogram::bucket_index(high), i + 1);
        }
    }

    #[test]
    fn record_tracks_count_sum_and_max() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_millis(1));
        h.record(SimDuration::from_millis(4));
        h.record(SimDuration::from_secs(2));
        assert_eq!(h.count(), 3);
        assert_eq!(h.total_micros, 1_000 + 4_000 + 2_000_000);
        assert_eq!(h.max_micros, 2_000_000);
        assert!((h.mean_secs() - 0.668_333).abs() < 1e-6);
    }

    #[test]
    fn quantile_upper_bound_brackets_the_sample() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(SimDuration::from_millis(1)); // 1000 µs → bucket 9 ([512, 1024))
        }
        h.record(SimDuration::from_secs(10));
        // p50 sits among the 1 ms samples.
        let p50 = h.quantile_upper_micros(0.5);
        assert!((1_000..=2_048).contains(&p50), "p50 bound {p50}");
        // p100 must cover the 10 s outlier.
        assert!(h.quantile_upper_micros(1.0) >= 10_000_000);
        assert_eq!(LatencyHistogram::new().quantile_upper_micros(0.5), 0);
    }

    #[test]
    fn merge_is_samplewise_union() {
        let mut a = LatencyHistogram::new();
        a.record(SimDuration::from_millis(2));
        let mut b = LatencyHistogram::new();
        b.record(SimDuration::from_secs(1));
        b.record(SimDuration::from_millis(2));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_micros, 1_000_000);
        assert_eq!(a.total_micros, 1_004_000);
    }

    #[test]
    fn stage_latencies_record_and_summarise() {
        let mut stages = StageLatencies::new();
        stages.record(
            SimDuration::from_millis(5),
            SimDuration::from_millis(300),
            SimDuration::from_millis(8),
        );
        assert_eq!(stages.samples(), 1);
        let summary = stages.summary();
        assert!(summary.contains("queueing"), "{summary}");
        assert!(summary.contains("consensus"), "{summary}");
        assert!(summary.contains("delivery"), "{summary}");
    }

    #[test]
    fn stage_latencies_roundtrip_through_json() {
        let mut stages = StageLatencies::new();
        stages.record(
            SimDuration::from_millis(1),
            SimDuration::from_secs(1),
            SimDuration::from_micros(10),
        );
        let json = serde_json::to_string(&stages).expect("serialise");
        let back: StageLatencies = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, stages);
    }
}
