//! Throughput-over-time series (the paper's Figs. 4–6).

use stabl_sim::SimTime;

/// Committed transactions per fixed-width time bin.
///
/// # Examples
///
/// ```
/// use stabl::metrics::ThroughputSeries;
/// use stabl_sim::SimTime;
///
/// let commits = [SimTime::from_millis(100), SimTime::from_millis(1900)];
/// let series = ThroughputSeries::from_commit_times(
///     commits.iter().copied(),
///     SimTime::from_secs(3),
/// );
/// assert_eq!(series.bins(), &[1, 1, 0]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThroughputSeries {
    bins: Vec<u32>,
}

impl ThroughputSeries {
    /// Bins commit instants into one-second buckets up to `horizon`.
    pub fn from_commit_times<I>(commits: I, horizon: SimTime) -> ThroughputSeries
    where
        I: IntoIterator<Item = SimTime>,
    {
        let seconds = (horizon.as_micros() / 1_000_000) as usize;
        let mut bins = vec![0u32; seconds.max(1)];
        for t in commits {
            let bin = (t.as_micros() / 1_000_000) as usize;
            if bin < bins.len() {
                bins[bin] += 1;
            }
        }
        ThroughputSeries { bins }
    }

    /// The per-second transaction counts.
    pub fn bins(&self) -> &[u32] {
        &self.bins
    }

    /// Mean throughput over a window of seconds.
    ///
    /// # Panics
    ///
    /// Panics if the window is out of range or empty.
    pub fn mean_over(&self, from_sec: usize, to_sec: usize) -> f64 {
        assert!(from_sec < to_sec && to_sec <= self.bins.len(), "bad window");
        let sum: u64 = self.bins[from_sec..to_sec].iter().map(|b| *b as u64).sum();
        sum as f64 / (to_sec - from_sec) as f64
    }

    /// The peak one-second throughput in a window.
    ///
    /// # Panics
    ///
    /// Panics if the window is out of range or empty.
    pub fn peak_over(&self, from_sec: usize, to_sec: usize) -> u32 {
        assert!(from_sec < to_sec && to_sec <= self.bins.len(), "bad window");
        self.bins[from_sec..to_sec]
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// First second at or after `from_sec` with throughput ≥ `level`, if
    /// any — used to measure recovery times.
    pub fn first_at_least(&self, from_sec: usize, level: u32) -> Option<usize> {
        (from_sec..self.bins.len()).find(|&s| self.bins[s] >= level)
    }

    /// Seconds with zero commits inside a window.
    pub fn zero_seconds(&self, from_sec: usize, to_sec: usize) -> usize {
        self.bins[from_sec..to_sec.min(self.bins.len())]
            .iter()
            .filter(|b| **b == 0)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs_tenths: u64) -> SimTime {
        SimTime::from_millis(secs_tenths * 100)
    }

    #[test]
    fn binning() {
        let series = ThroughputSeries::from_commit_times(
            vec![t(1), t(5), t(11), t(12), t(25)],
            SimTime::from_secs(3),
        );
        assert_eq!(series.bins(), &[2, 2, 1]);
    }

    #[test]
    fn commits_beyond_horizon_ignored() {
        let series = ThroughputSeries::from_commit_times(vec![t(45)], SimTime::from_secs(3));
        assert_eq!(series.bins(), &[0, 0, 0]);
    }

    #[test]
    fn window_statistics() {
        let series = ThroughputSeries::from_commit_times(
            vec![t(1), t(5), t(11), t(12), t(25)],
            SimTime::from_secs(4),
        );
        assert_eq!(series.mean_over(0, 2), 2.0);
        assert_eq!(series.peak_over(0, 3), 2);
        assert_eq!(series.zero_seconds(0, 4), 1);
        assert_eq!(series.first_at_least(1, 2), Some(1));
        assert_eq!(series.first_at_least(3, 1), None);
    }

    #[test]
    #[should_panic(expected = "bad window")]
    fn bad_window_panics() {
        let series = ThroughputSeries::from_commit_times(vec![t(1)], SimTime::from_secs(2));
        let _ = series.mean_over(1, 5);
    }
}
