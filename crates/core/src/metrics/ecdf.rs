//! Empirical CDFs, super-cumulatives and the sensitivity score.
//!
//! The paper (§3) defines the *sensitivity* of a blockchain to a failure
//! type as the difference between the areas under the empirical CDFs of
//! transaction latencies measured in a baseline and in an altered
//! environment — the pink region of its Fig. 1. Over the curves' common
//! domain this area equals the difference of the mean latencies, which
//! is what makes the score outlier-resilient and parameter-free (the
//! properties §3 claims); [`Sensitivity::from_ecdfs`] implements this
//! reading, and the literal super-cumulative `Ŝ(x) = Σ_{i≤x} F̂(i)` is
//! available as [`Ecdf::supercumulative`] (see DESIGN.md §3a for why the
//! two readings differ). A blockchain that stops committing transactions
//! after the failure event has an **infinite** sensitivity (a liveness
//! violation).

use std::fmt;

/// An empirical cumulative distribution function over latency samples
/// (seconds).
///
/// # Examples
///
/// ```
/// use stabl::metrics::Ecdf;
///
/// let ecdf = Ecdf::new(vec![1.0, 2.0, 3.0]).expect("valid samples");
/// assert_eq!(ecdf.value_at(2.0), 2.0 / 3.0);
/// assert_eq!(ecdf.max(), 3.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

/// Error constructing an [`Ecdf`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EcdfError {
    /// No samples were provided.
    Empty,
    /// A sample was NaN, infinite or negative.
    InvalidSample,
}

impl fmt::Display for EcdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcdfError::Empty => write!(f, "no latency samples"),
            EcdfError::InvalidSample => write!(f, "latency sample was NaN, infinite or negative"),
        }
    }
}

impl std::error::Error for EcdfError {}

impl Ecdf {
    /// Builds an eCDF from latency samples in seconds.
    ///
    /// # Errors
    ///
    /// Fails on an empty, NaN, infinite or negative input.
    pub fn new<I>(samples: I) -> Result<Ecdf, EcdfError>
    where
        I: IntoIterator<Item = f64>,
    {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        if sorted.is_empty() {
            return Err(EcdfError::Empty);
        }
        if sorted.iter().any(|x| !x.is_finite() || *x < 0.0) {
            return Err(EcdfError::InvalidSample);
        }
        sorted.sort_by(f64::total_cmp);
        Ok(Ecdf { sorted })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` if the eCDF holds no samples (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F̂(x)`: the fraction of samples ≤ `x`.
    pub fn value_at(&self, x: f64) -> f64 {
        let count = self.sorted.partition_point(|s| *s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// The largest sample (the paper's `b`).
    pub fn max(&self) -> f64 {
        // Non-empty by construction (`new` rejects empty input).
        self.sorted.last().copied().unwrap_or(f64::NAN)
    }

    /// The sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), nearest-rank.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[rank - 1]
    }

    /// The exact area under the eCDF from 0 to its maximum:
    /// `∫₀ᵇ F̂(t) dt = b − mean`. This is the continuous limit of the
    /// paper's super-cumulative `Ŝ(b)`.
    pub fn area(&self) -> f64 {
        self.max() - self.mean()
    }

    /// The discretised super-cumulative of the paper,
    /// `Ŝ(b) = Σ_{i·step ≤ b} F̂(i·step) · step`, with grid `step`
    /// seconds. Converges to [`Ecdf::area`] as `step → 0`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not positive.
    pub fn supercumulative(&self, step: f64) -> f64 {
        assert!(step > 0.0, "grid step must be positive");
        let b = self.max();
        let mut sum = 0.0;
        let mut i = 0u64;
        loop {
            let x = i as f64 * step;
            if x > b {
                break;
            }
            sum += self.value_at(x) * step;
            i += 1;
        }
        sum
    }

    /// Iterates over `(x, F̂(x))` steps (for plotting).
    pub fn steps(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let m = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(move |(i, x)| (*x, (i + 1) as f64 / m))
    }
}

/// A sensitivity score: finite, or infinite when the altered environment
/// lost liveness (stopped committing transactions).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Sensitivity {
    /// The absolute area between the eCDFs, with `improved = true` when
    /// the altered environment *outperformed* the baseline (the paper's
    /// striped bars).
    Finite {
        /// `|μ₂ − μ₁|`: the area between the curves over their common
        /// domain.
        score: f64,
        /// `μ₂ < μ₁`: the alteration improved responsiveness.
        improved: bool,
    },
    /// The altered environment stopped committing: liveness violation.
    Infinite,
}

impl Sensitivity {
    /// Computes the score from baseline and altered latency eCDFs: the
    /// area between the two curves over their common domain
    /// `[0, max(b₁, b₂)]` (each curve held at 1 beyond its own maximum) —
    /// the pink region of the paper's Fig. 1. Algebraically this equals
    /// the difference of the mean latencies, which is what makes the
    /// score robust to isolated outliers and parameter-free.
    pub fn from_ecdfs(baseline: &Ecdf, altered: &Ecdf) -> Sensitivity {
        let score = altered.mean() - baseline.mean();
        Sensitivity::Finite {
            score: score.abs(),
            improved: score < 0.0,
        }
    }

    /// The finite score, if any.
    pub fn score(&self) -> Option<f64> {
        match self {
            Sensitivity::Finite { score, .. } => Some(*score),
            Sensitivity::Infinite => None,
        }
    }

    /// `true` for the infinite (liveness-violation) case.
    pub fn is_infinite(&self) -> bool {
        matches!(self, Sensitivity::Infinite)
    }
}

impl fmt::Display for Sensitivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sensitivity::Finite {
                score,
                improved: false,
            } => write!(f, "{score:.3}"),
            Sensitivity::Finite {
                score,
                improved: true,
            } => write!(f, "{score:.3} (improved)"),
            Sensitivity::Infinite => write!(f, "∞"),
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn samples() -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(0.0f64..500.0, 1..200)
    }

    proptest! {
        /// F̂ is a monotone step function from 0 to 1.
        #[test]
        fn ecdf_is_monotone_and_normalised(data in samples()) {
            let e = Ecdf::new(data).expect("valid");
            let mut previous = 0.0;
            for x in [0.0, 0.1, 1.0, 10.0, 100.0, 250.0, 500.0, 1000.0] {
                let v = e.value_at(x);
                prop_assert!((0.0..=1.0).contains(&v));
                prop_assert!(v >= previous, "F must not decrease");
                previous = v;
            }
            prop_assert_eq!(e.value_at(e.max()), 1.0);
        }

        /// The grid super-cumulative converges to the exact area.
        #[test]
        fn supercumulative_converges(data in samples()) {
            let e = Ecdf::new(data).expect("valid");
            let fine = e.supercumulative(0.01);
            prop_assert!((fine - e.area()).abs() < 0.2, "fine {} vs {}", fine, e.area());
        }

        /// The score is symmetric in magnitude, zero on identical
        /// inputs, and shifts linearly with a latency offset.
        #[test]
        fn sensitivity_properties(data in samples(), shift in 0.0f64..50.0) {
            let base = Ecdf::new(data.clone()).expect("valid");
            let shifted =
                Ecdf::new(data.iter().map(|x| x + shift)).expect("valid");
            let ab = Sensitivity::from_ecdfs(&base, &shifted);
            let ba = Sensitivity::from_ecdfs(&shifted, &base);
            let score = ab.score().expect("finite");
            prop_assert!((score - shift).abs() < 1e-6, "score {} vs shift {}", score, shift);
            prop_assert_eq!(ba.score(), ab.score());
            if shift > 0.0 {
                let ab_degraded = matches!(ab, Sensitivity::Finite { improved: false, .. });
                let ba_improved = matches!(ba, Sensitivity::Finite { improved: true, .. });
                prop_assert!(ab_degraded, "shifting up must degrade");
                prop_assert!(ba_improved, "shifting down must improve");
            }
            let same = Sensitivity::from_ecdfs(&base, &base.clone());
            prop_assert_eq!(same.score(), Some(0.0));
        }

        /// Quantiles are ordered and within the sample range.
        #[test]
        fn quantiles_ordered(data in samples()) {
            let e = Ecdf::new(data).expect("valid");
            let q: Vec<f64> = [0.0, 0.25, 0.5, 0.75, 0.95, 1.0]
                .iter()
                .map(|q| e.quantile(*q))
                .collect();
            prop_assert!(q.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(q[0] >= e.min() && q[5] <= e.max());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ecdf(samples: &[f64]) -> Ecdf {
        Ecdf::new(samples.iter().copied()).expect("valid")
    }

    #[test]
    fn construction_validates() {
        assert_eq!(Ecdf::new(Vec::new()), Err(EcdfError::Empty));
        assert_eq!(
            Ecdf::new(vec![1.0, f64::NAN]),
            Err(EcdfError::InvalidSample)
        );
        assert_eq!(Ecdf::new(vec![-1.0]), Err(EcdfError::InvalidSample));
        assert_eq!(
            Ecdf::new(vec![f64::INFINITY]),
            Err(EcdfError::InvalidSample)
        );
    }

    #[test]
    fn value_at_is_step_function() {
        let e = ecdf(&[1.0, 2.0, 2.0, 4.0]);
        assert_eq!(e.value_at(0.5), 0.0);
        assert_eq!(e.value_at(1.0), 0.25);
        assert_eq!(e.value_at(2.0), 0.75);
        assert_eq!(e.value_at(3.9), 0.75);
        assert_eq!(e.value_at(4.0), 1.0);
        assert_eq!(e.value_at(100.0), 1.0);
    }

    #[test]
    fn area_is_max_minus_mean() {
        let e = ecdf(&[1.0, 2.0, 3.0]);
        assert!((e.area() - (3.0 - 2.0)).abs() < 1e-12);
        // A degenerate distribution has zero area.
        assert_eq!(ecdf(&[5.0, 5.0]).area(), 0.0);
    }

    #[test]
    fn supercumulative_converges_to_area() {
        let e = ecdf(&[0.3, 1.7, 2.2, 4.9, 0.8]);
        let exact = e.area();
        let coarse = e.supercumulative(0.5);
        let fine = e.supercumulative(0.001);
        assert!((fine - exact).abs() < 0.01, "fine {fine} vs exact {exact}");
        assert!((coarse - exact).abs() < 0.5);
    }

    #[test]
    fn quantiles() {
        let e = ecdf(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.quantile(0.5), 2.0);
        assert_eq!(e.quantile(1.0), 4.0);
        assert_eq!(e.quantile(0.0), 1.0);
    }

    #[test]
    fn sensitivity_direction() {
        let base = ecdf(&[1.0, 1.0, 1.0, 5.0]); // mean 2
        let worse = ecdf(&[3.0, 3.0, 3.0, 9.0]); // mean 4.5
        let s = Sensitivity::from_ecdfs(&base, &worse);
        assert_eq!(
            s,
            Sensitivity::Finite {
                score: 2.5,
                improved: false
            }
        );
        let better = ecdf(&[0.5, 0.5, 0.5, 2.5]); // mean 1.0
        let s = Sensitivity::from_ecdfs(&base, &better);
        assert_eq!(
            s,
            Sensitivity::Finite {
                score: 1.0,
                improved: true
            }
        );
    }

    #[test]
    fn sensitivity_is_outlier_resilient() {
        // One huge outlier among many samples barely moves the score
        // (the paper's robustness property).
        let base: Vec<f64> = (0..1000).map(|i| 1.0 + (i % 10) as f64 / 100.0).collect();
        let mut spiky = base.clone();
        spiky[0] = 200.0;
        let s = Sensitivity::from_ecdfs(&ecdf(&base), &Ecdf::new(spiky).expect("valid"));
        assert!(s.score().expect("finite") < 0.25, "outlier dominated: {s}");
    }

    #[test]
    fn sensitivity_is_symmetric_in_magnitude() {
        let a = ecdf(&[1.0, 2.0, 4.0]);
        let b = ecdf(&[2.0, 3.0, 7.0]);
        let ab = Sensitivity::from_ecdfs(&a, &b).score().expect("finite");
        let ba = Sensitivity::from_ecdfs(&b, &a).score().expect("finite");
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn identical_distributions_score_zero() {
        let a = ecdf(&[0.4, 1.2, 2.0]);
        let s = Sensitivity::from_ecdfs(&a, &a.clone());
        assert_eq!(s.score(), Some(0.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            Sensitivity::Finite {
                score: 1.5,
                improved: false
            }
            .to_string(),
            "1.500"
        );
        assert_eq!(
            Sensitivity::Finite {
                score: 0.25,
                improved: true
            }
            .to_string(),
            "0.250 (improved)"
        );
        assert_eq!(Sensitivity::Infinite.to_string(), "∞");
        assert!(Sensitivity::Infinite.is_infinite());
    }

    #[test]
    fn steps_are_monotone() {
        let e = ecdf(&[3.0, 1.0, 2.0]);
        let steps: Vec<(f64, f64)> = e.steps().collect();
        assert_eq!(steps.len(), 3);
        assert!(steps
            .windows(2)
            .all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(steps.last().expect("non-empty").1, 1.0);
    }
}
