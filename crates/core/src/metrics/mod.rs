//! Measurement machinery: eCDFs, super-cumulatives, the sensitivity
//! score and throughput series.

mod dependability;
mod ecdf;
mod latency;
mod throughput;

pub use dependability::{downtime_seconds, throughput_drop, RecoveryReport, WindowError};
pub use ecdf::{Ecdf, EcdfError, Sensitivity};
pub use latency::{LatencyHistogram, StageLatencies, HISTOGRAM_BUCKETS};
pub use throughput::ThroughputSeries;
