//! Measurement machinery: eCDFs, super-cumulatives, the sensitivity
//! score and throughput series.

mod dependability;
mod ecdf;
mod throughput;

pub use dependability::{downtime_seconds, throughput_drop, RecoveryReport};
pub use ecdf::{Ecdf, EcdfError, Sensitivity};
pub use throughput::ThroughputSeries;
