//! Measurement machinery: eCDFs, super-cumulatives, the sensitivity
//! score and throughput series.

mod dependability;
mod ecdf;
mod latency;
mod throughput;

pub use dependability::{downtime_seconds, throughput_drop, RecoveryReport, WindowError};
pub use ecdf::{Ecdf, EcdfError, Sensitivity};
// The mergeable summary sketches live in `stabl-stats` so the bench
// replication engine can fold per-seed summaries without a dependency
// on this crate; re-exported here because `RunSummary` quantiles are
// computed through them.
pub use latency::{LatencyHistogram, StageLatencies, HISTOGRAM_BUCKETS};
pub use stabl_stats::{MeanVar, QuantileSketch};
pub use throughput::ThroughputSeries;
