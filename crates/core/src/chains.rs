//! The five studied blockchains behind one dispatching interface.

use std::fmt;

use crate::harness::{run_protocol_traced, RunConfig, RunResult, TracedRun};
use stabl_algorand::{AlgorandConfig, AlgorandNode};
use stabl_aptos::{AptosConfig, AptosNode};
use stabl_avalanche::{AvalancheConfig, AvalancheNode};
use stabl_redbelly::{RedbellyConfig, RedbellyNode};
use stabl_sim::CaptureLevel;
use stabl_solana::{SolanaConfig, SolanaNode};

/// One of the five blockchains the paper evaluates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Chain {
    /// Algorand v3.22.0 (BA★, sortition, dynamic round time).
    Algorand,
    /// Aptos v1.9.3 (DiemBFT, Block-STM).
    Aptos,
    /// Avalanche C-Chain v1.10.18 (Snowball, throttling).
    Avalanche,
    /// Redbelly v0.36.2 (DBFT superblocks).
    Redbelly,
    /// Solana v1.18.1 (leader schedule, EAH).
    Solana,
}

impl Chain {
    /// Every studied chain, in the paper's order.
    pub const ALL: [Chain; 5] = [
        Chain::Algorand,
        Chain::Aptos,
        Chain::Avalanche,
        Chain::Redbelly,
        Chain::Solana,
    ];

    /// The chain's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Chain::Algorand => "Algorand",
            Chain::Aptos => "Aptos",
            Chain::Avalanche => "Avalanche",
            Chain::Redbelly => "Redbelly",
            Chain::Solana => "Solana",
        }
    }

    /// The failure threshold `t_B` the paper assigns for an `n`-node
    /// network: `⌈n/5⌉ − 1` for Algorand and Avalanche (20 % coalitions
    /// break them), `⌈n/3⌉ − 1` for the BFT trio.
    pub fn tolerated_faults(&self, n: usize) -> usize {
        match self {
            Chain::Algorand | Chain::Avalanche => n.div_ceil(5).saturating_sub(1),
            Chain::Aptos | Chain::Redbelly | Chain::Solana => n.div_ceil(3).saturating_sub(1),
        }
    }

    /// Runs an experiment on this chain with its default configuration.
    pub fn run(&self, config: &RunConfig) -> RunResult {
        self.run_with_cpu(config, 1.0)
    }

    /// Runs an experiment with `cores` times the default CPU budget —
    /// the paper doubles the vCPUs (4 → 8) for the secure-client
    /// experiment to keep Aptos from dropping transactions (§3).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is not positive.
    pub fn run_with_cpu(&self, config: &RunConfig, cores: f64) -> RunResult {
        self.run_traced_with_cpu(config, cores, CaptureLevel::Off)
            .result
    }

    /// Runs an experiment recording the structured event stream at
    /// `capture` (the [`TracedRun::result`] is identical to an untraced
    /// run's).
    pub fn run_traced(&self, config: &RunConfig, capture: CaptureLevel) -> TracedRun {
        self.run_traced_with_cpu(config, 1.0, capture)
    }

    /// The traced, CPU-scaled general form behind [`Chain::run`],
    /// [`Chain::run_with_cpu`] and [`Chain::run_traced`].
    ///
    /// # Panics
    ///
    /// Panics if `cores` is not positive.
    pub fn run_traced_with_cpu(
        &self,
        config: &RunConfig,
        cores: f64,
        capture: CaptureLevel,
    ) -> TracedRun {
        assert!(cores > 0.0, "cores factor must be positive");
        // Production-shaped workloads need the contention machinery:
        // lazy genesis funding for the scattered account population and
        // (on Aptos) the Block-STM within-block conflict model.
        let contention = config.contention_active();
        match self {
            Chain::Algorand => {
                let mut c = AlgorandConfig::default();
                c.exec_per_tx = c.exec_per_tx.mul_f64(1.0 / cores);
                c.exec_per_block = c.exec_per_block.mul_f64(1.0 / cores);
                c.model_contention = contention;
                run_protocol_traced::<AlgorandNode>(config, c, capture)
            }
            Chain::Aptos => {
                let mut c = AptosConfig::default();
                c.exec_per_tx = c.exec_per_tx.mul_f64(1.0 / cores);
                c.exec_per_block = c.exec_per_block.mul_f64(1.0 / cores);
                c.validation_cost = c.validation_cost.mul_f64(1.0 / cores);
                c.stale_exec_cost = c.stale_exec_cost.mul_f64(1.0 / cores);
                c.model_contention = contention;
                run_protocol_traced::<AptosNode>(config, c, capture)
            }
            Chain::Avalanche => {
                let mut c = AvalancheConfig::default();
                c.cpu_quota *= cores;
                c.model_contention = contention;
                run_protocol_traced::<AvalancheNode>(config, c, capture)
            }
            Chain::Redbelly => {
                let mut c = RedbellyConfig::default();
                c.exec_per_tx = c.exec_per_tx.mul_f64(1.0 / cores);
                c.exec_per_block = c.exec_per_block.mul_f64(1.0 / cores);
                c.model_contention = contention;
                run_protocol_traced::<RedbellyNode>(config, c, capture)
            }
            Chain::Solana => {
                let mut c = SolanaConfig::default();
                c.exec_per_tx = c.exec_per_tx.mul_f64(1.0 / cores);
                c.model_contention = contention;
                run_protocol_traced::<SolanaNode>(config, c, capture)
            }
        }
    }
}

impl fmt::Display for Chain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_match_the_paper() {
        // n = 10: t = 1 for Algorand/Avalanche, t = 3 for the others.
        assert_eq!(Chain::Algorand.tolerated_faults(10), 1);
        assert_eq!(Chain::Avalanche.tolerated_faults(10), 1);
        assert_eq!(Chain::Aptos.tolerated_faults(10), 3);
        assert_eq!(Chain::Redbelly.tolerated_faults(10), 3);
        assert_eq!(Chain::Solana.tolerated_faults(10), 3);
        // And the maximum t_B + 1 over all chains is the 4 the secure
        // client replicates to.
        let max_t = Chain::ALL.iter().map(|c| c.tolerated_faults(10)).max();
        assert_eq!(max_t, Some(3));
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<&str> = Chain::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 5);
        assert_eq!(Chain::Redbelly.to_string(), "Redbelly");
    }

    #[test]
    fn every_chain_commits_a_quick_baseline() {
        for chain in Chain::ALL {
            let config = crate::RunConfig::quick(42);
            let result = chain.run(&config);
            assert!(
                result.commit_ratio() > 0.95,
                "{chain}: committed only {:.0}% of the load",
                result.commit_ratio() * 100.0
            );
            assert!(!result.lost_liveness, "{chain} lost liveness in baseline");
            assert!(result.panics.is_empty(), "{chain} panicked in baseline");
        }
    }

    #[test]
    fn every_chain_survives_one_withholding_byzantine_node() {
        // One mute back node is within every chain's fault budget
        // (f = 1 ≤ t_B): the wrapper engages, traffic shrinks, but the
        // client-facing nodes keep committing.
        for chain in Chain::ALL {
            let mut config = crate::RunConfig::quick(42);
            config.byzantine = stabl_sim::ByzantineSpec::new(
                [stabl_sim::NodeId::new(9)],
                stabl_sim::ByzantineBehavior::Withhold,
            );
            let result = chain.run(&config);
            let baseline = chain.run(&crate::RunConfig::quick(42));
            assert!(
                result.stats.messages_sent < baseline.stats.messages_sent,
                "{chain}: node 9's outbound traffic must be withheld"
            );
            assert!(
                result.commit_ratio() > 0.9,
                "{chain}: committed only {:.0}% with one mute node",
                result.commit_ratio() * 100.0
            );
            assert!(!result.lost_liveness, "{chain} lost liveness");
        }
    }
}
