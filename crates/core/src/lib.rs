//! # stabl — sensitivity testing and analysis for blockchains
//!
//! A Rust reproduction of **"STABL: The Sensitivity of Blockchains to
//! Failures"** (Gramoli, Guerraoui, Lebedev, Voron — Middleware 2025).
//!
//! Stabl measures the *sensitivity* of a blockchain to an adversarial
//! environment: the absolute difference between the areas under the
//! empirical CDFs of transaction latencies in a baseline and in an
//! altered run ([`metrics::Sensitivity`]). Four alterations are studied
//! on five simulated chains (Algorand, Aptos, Avalanche, Redbelly,
//! Solana): permanent crashes, transient node failures, network
//! partitions and a redundant "secure client" coping with Byzantine
//! nodes.
//!
//! ## Quickstart
//!
//! ```
//! use stabl::{Chain, PaperSetup, ScenarioKind};
//!
//! // A scaled-down (60 s) version of the paper's crash experiment.
//! let setup = PaperSetup::quick(60, 42);
//! let report = setup.sensitivity(Chain::Redbelly, ScenarioKind::Crash);
//! println!("{report}");
//! assert!(!report.sensitivity.is_infinite());
//! ```
//!
//! The full campaign (400 s runs, all chains × all scenarios) is driven
//! by the binaries in `stabl-bench`, one per figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chains;
mod client;
pub mod diagnose;
mod faults;
mod harness;
pub mod metrics;
pub mod observe;
pub mod report;
mod scenario;
mod workload;

pub use chains::Chain;
pub use client::{ClientMode, RetryPolicy};
pub use faults::{FaultAction, FaultError, FaultPlan, FaultSchedule, FaultWindow};
pub use harness::{run_protocol, run_protocol_traced, RunConfig, RunResult, RunTrace, TracedRun};
pub use scenario::{report_from_runs, PaperSetup, ScenarioKind};
pub use workload::{Submission, WorkloadShape, WorkloadSpec};
// The production traffic model behind WorkloadSpec::production.
pub use stabl_workload::{
    AccountPopulation, ArrivalProcess, ConflictProfile, TrafficModel, ZipfSampler,
};

// The message-level adversity surface, re-exported so campaign configs
// can be written against one crate.
pub use stabl_sim::{ByzantineBehavior, ByzantineSpec, CaptureLevel, LinkFault, SimEvent};
