//! The `stabl` command-line tool: run sensitivity experiments without
//! writing Rust.
//!
//! ```text
//! stabl list
//! stabl run <chain> <scenario> [--secs N] [--seed S] [--nodes N]
//! stabl campaign [--secs N] [--seed S]
//! stabl compare <chain> [--secs N] [--seed S]
//! ```

use std::process::ExitCode;

use stabl::{Chain, PaperSetup, ScenarioKind};

const USAGE: &str = "\
stabl — sensitivity testing and analysis for blockchains

USAGE:
    stabl list
        Show the supported chains, scenarios and fault thresholds.
    stabl run <chain> <scenario> [--secs N] [--seed S] [--nodes N]
        Run one scenario and print its sensitivity report.
    stabl compare <chain> [--secs N] [--seed S] [--nodes N]
        Run all four adversarial scenarios for one chain.
    stabl campaign [--secs N] [--seed S] [--nodes N]
        Run every chain through every scenario (the paper's Fig. 3).

CHAINS:    algorand aptos avalanche redbelly solana
SCENARIOS: crash transient partition secure
OPTIONS:
    --secs N    scaled-down run length in simulated seconds
                (default: the paper's 400 s timeline)
    --seed S    master seed (u64)
    --nodes N   validators (default 10)
";

fn parse_chain(name: &str) -> Option<Chain> {
    Chain::ALL
        .into_iter()
        .find(|c| c.name().eq_ignore_ascii_case(name))
}

fn parse_scenario(name: &str) -> Option<ScenarioKind> {
    match name {
        "crash" => Some(ScenarioKind::Crash),
        "transient" => Some(ScenarioKind::Transient),
        "partition" => Some(ScenarioKind::Partition),
        "secure" | "secure-client" => Some(ScenarioKind::SecureClient),
        "baseline" => Some(ScenarioKind::Baseline),
        _ => None,
    }
}

struct Options {
    setup: PaperSetup,
    positional: Vec<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut secs: Option<u64> = None;
    let mut seed: Option<u64> = None;
    let mut nodes: Option<usize> = None;
    let mut positional = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--secs" => {
                secs = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--secs takes a number of seconds")?,
                );
            }
            "--seed" => {
                seed = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--seed takes a u64")?,
                );
            }
            "--nodes" => {
                nodes = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--nodes takes a count")?,
                );
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other}"));
            }
            other => positional.push(other.to_owned()),
        }
    }
    let mut setup = match secs {
        Some(secs) => PaperSetup::quick(secs, seed.unwrap_or(PaperSetup::default().seed)),
        None => PaperSetup::default(),
    };
    if let Some(seed) = seed {
        setup.seed = seed;
    }
    if let Some(n) = nodes {
        if n < 10 {
            return Err("--nodes must be at least 10 (5 client-facing + 5 faultable)".into());
        }
        setup.n = n;
    }
    Ok(Options { setup, positional })
}

fn cmd_list() {
    println!("{:<10} {:>8} {:>8}", "chain", "t (n=10)", "f=t+1");
    for chain in Chain::ALL {
        let t = chain.tolerated_faults(10);
        println!("{:<10} {:>8} {:>8}", chain.name(), t, t + 1);
    }
    println!("\nscenarios: baseline crash transient partition secure");
}

fn cmd_run(options: &Options) -> Result<(), String> {
    let [chain, scenario] = &options.positional[..] else {
        return Err("run takes <chain> <scenario>".into());
    };
    let chain = parse_chain(chain).ok_or_else(|| format!("unknown chain {chain}"))?;
    let kind = parse_scenario(scenario).ok_or_else(|| format!("unknown scenario {scenario}"))?;
    if kind == ScenarioKind::Baseline {
        let result = options.setup.run(chain, kind);
        println!("{}", stabl::report::RunSummary::of(&result));
        return Ok(());
    }
    eprintln!("running {} baseline + {} …", chain.name(), kind.name());
    let report = options.setup.sensitivity(chain, kind);
    println!("{report}");
    Ok(())
}

fn cmd_compare(options: &Options) -> Result<(), String> {
    let [chain] = &options.positional[..] else {
        return Err("compare takes <chain>".into());
    };
    let chain = parse_chain(chain).ok_or_else(|| format!("unknown chain {chain}"))?;
    for kind in ScenarioKind::ALTERED {
        eprintln!("running {} {} …", chain.name(), kind.name());
        println!("{}", options.setup.sensitivity(chain, kind));
    }
    Ok(())
}

fn cmd_campaign(options: &Options) -> Result<(), String> {
    if !options.positional.is_empty() {
        return Err("campaign takes no positional arguments".into());
    }
    for chain in Chain::ALL {
        for kind in ScenarioKind::ALTERED {
            eprintln!("running {} {} …", chain.name(), kind.name());
            println!("{}", options.setup.sensitivity(chain, kind));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let options = match parse_options(&args[1..]) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}\n");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let outcome = match command.as_str() {
        "list" => {
            cmd_list();
            Ok(())
        }
        "run" => cmd_run(&options),
        "compare" => cmd_compare(&options),
        "campaign" => cmd_campaign(&options),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other}")),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
