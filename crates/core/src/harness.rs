//! The experiment harness: deploys a simulated network, drives the
//! workload through clients, injects the fault plan and collects the
//! client-observed latency distribution.

use std::collections::HashMap;

use stabl_sim::{
    DetRng, LatencyModel, LatencyTopology, NodeId, PanicRecord, Protocol, SimBuilder, SimDuration,
    SimStats, SimTime,
};
use stabl_types::{Transaction, TxId};

use crate::metrics::{Ecdf, EcdfError, ThroughputSeries};
use crate::{ClientMode, FaultPlan, WorkloadSpec};

/// Full description of one experiment run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Number of validator nodes (the paper: 10).
    pub n: usize,
    /// Master seed; same seed ⇒ bit-identical run.
    pub seed: u64,
    /// Link latency model (the uniform fallback).
    pub latency: LatencyModel,
    /// Optional region-based latency topology; when set, per-pair models
    /// replace the uniform latency (geo-distributed deployments).
    pub topology: Option<LatencyTopology>,
    /// Simulated run length (the paper: 400 s).
    pub horizon: SimTime,
    /// The client workload.
    pub workload: WorkloadSpec,
    /// Client connection strategy.
    pub client_mode: ClientMode,
    /// Failures to inject.
    pub faults: FaultPlan,
    /// Byzantine RPC nodes: they process the chain correctly but
    /// *withhold* commit confirmations from their clients (the attack
    /// the secure client defends against, §3/§7).
    pub byzantine_rpc: Vec<NodeId>,
    /// Liveness rule: the run lost liveness if transactions are left
    /// unresolved and nothing committed in this final window.
    pub stall_grace: SimDuration,
}

impl RunConfig {
    /// A small sane default for examples and tests: 10 nodes, 30 s, the
    /// standard 200 TPS workload, no faults.
    pub fn quick(seed: u64) -> RunConfig {
        let horizon = SimTime::from_secs(30);
        RunConfig {
            n: 10,
            seed,
            latency: LatencyModel::lan(),
            topology: None,
            horizon,
            workload: WorkloadSpec::paper_standard(SimTime::from_secs(25)),
            client_mode: ClientMode::Single,
            faults: FaultPlan::None,
            byzantine_rpc: Vec::new(),
            stall_grace: SimDuration::from_secs(10),
        }
    }
}

/// What one run measured.
///
/// Serialisable so the bench harness can memoise whole runs on disk:
/// latencies round-trip through JSON losslessly (shortest-representation
/// floats), so a cached run is bit-identical to a fresh one.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct RunResult {
    /// Client-observed latencies of committed transactions, seconds.
    pub latencies: Vec<f64>,
    /// Client-observed commit instants (same order as `latencies`).
    pub commit_times: Vec<SimTime>,
    /// Transactions submitted.
    pub submitted: usize,
    /// Transactions never (fully) committed by the end of the run.
    pub unresolved: usize,
    /// `true` if the chain stopped committing (liveness violation ⇒
    /// infinite sensitivity).
    pub lost_liveness: bool,
    /// Fatal node failures during the run.
    pub panics: Vec<PanicRecord>,
    /// Kernel traffic counters.
    pub stats: SimStats,
    /// The run horizon (for throughput binning).
    pub horizon: SimTime,
}

impl RunResult {
    /// The latency eCDF of the run.
    ///
    /// # Errors
    ///
    /// Fails if nothing committed.
    pub fn ecdf(&self) -> Result<Ecdf, EcdfError> {
        Ecdf::new(self.latencies.iter().copied())
    }

    /// Commits per second over the run.
    pub fn throughput(&self) -> ThroughputSeries {
        ThroughputSeries::from_commit_times(self.commit_times.iter().copied(), self.horizon)
    }

    /// Fraction of submitted transactions that committed.
    pub fn commit_ratio(&self) -> f64 {
        if self.submitted == 0 {
            return 1.0;
        }
        (self.submitted - self.unresolved) as f64 / self.submitted as f64
    }
}

/// Runs one experiment over protocol `P`.
///
/// Clients submit per [`ClientMode`]; a transaction counts as committed
/// when **every** node its client is connected to reported the commit
/// (for the single mode, exactly the node that received it). The
/// returned latencies are the client-observed commit delays.
///
/// # Panics
///
/// Panics if the workload references more client-facing nodes than the
/// network has.
pub fn run_protocol<P>(config: &RunConfig, protocol_config: P::Config) -> RunResult
where
    P: Protocol<Request = Transaction, Commit = TxId>,
{
    let front_nodes = config.workload.clients.min(config.n);
    let mut builder = SimBuilder::new(config.n, config.seed);
    builder.latency(config.latency);
    if let Some(topology) = config.topology.clone() {
        builder.topology(topology);
    }
    let mut sim = builder.build::<P>(protocol_config);
    config.faults.schedule(&mut sim);

    // Clients reach their nodes over the same network fabric: each
    // submission pays an independent client-link delay.
    let mut client_rng = DetRng::new(config.seed ^ 0xC11E_17DE_1A75_0000);
    let submissions = config.workload.generate();
    for submission in &submissions {
        for node in config.client_mode.nodes_for(submission.client, front_nodes) {
            let delay = config.latency.sample(&mut client_rng);
            sim.schedule_request(submission.at + delay, node, submission.transaction);
        }
    }
    sim.run_until(config.horizon);

    // First commit instant per (node, transaction).
    let mut first_commit: HashMap<(u32, TxId), SimTime> = HashMap::new();
    let mut last_commit = SimTime::ZERO;
    for record in sim.commits() {
        first_commit
            .entry((record.node.as_u32(), record.commit))
            .or_insert(record.time);
        last_commit = last_commit.max(record.time);
    }

    let mut latencies = Vec::with_capacity(submissions.len());
    let mut commit_times = Vec::with_capacity(submissions.len());
    let mut unresolved = 0usize;
    let quorum = config.client_mode.required_quorum();
    for submission in &submissions {
        let nodes = config.client_mode.nodes_for(submission.client, front_nodes);
        let id = submission.transaction.id();
        // Observations the client can actually collect: Byzantine RPC
        // nodes withhold theirs.
        let mut observed: Vec<SimTime> = nodes
            .iter()
            .filter(|node| !config.byzantine_rpc.contains(node))
            .filter_map(|node| first_commit.get(&(node.as_u32(), id)).copied())
            .collect();
        observed.sort_unstable();
        if observed.len() >= quorum {
            let resolved_at = observed[quorum - 1];
            latencies.push((resolved_at - submission.at).as_secs_f64());
            commit_times.push(resolved_at);
        } else {
            unresolved += 1;
        }
    }

    let lost_liveness = unresolved > 0 && last_commit + config.stall_grace < config.horizon;

    RunResult {
        latencies,
        commit_times,
        submitted: submissions.len(),
        unresolved,
        lost_liveness,
        panics: sim.panics().to_vec(),
        stats: sim.stats(),
        horizon: config.horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabl_sim::{Ctx, NodeId};

    /// A toy chain that commits every request everywhere after one
    /// broadcast hop — enough to validate the harness bookkeeping.
    struct Instant;

    impl Protocol for Instant {
        type Msg = Transaction;
        type Request = Transaction;
        type Commit = TxId;
        type Timer = ();
        type Config = ();

        fn new(_: NodeId, _: usize, _: &(), _: &mut Ctx<'_, Self>) -> Self {
            Instant
        }
        fn on_message(&mut self, _: NodeId, tx: Transaction, ctx: &mut Ctx<'_, Self>) {
            ctx.commit(tx.id());
        }
        fn on_timer(&mut self, _: (), _: &mut Ctx<'_, Self>) {}
        fn on_request(&mut self, tx: Transaction, ctx: &mut Ctx<'_, Self>) {
            ctx.broadcast(tx);
            ctx.commit(tx.id());
        }
        fn on_restart(&mut self, _: &mut Ctx<'_, Self>) {}
    }

    #[test]
    fn single_mode_resolves_at_receiving_node() {
        let config = RunConfig::quick(1);
        let result = run_protocol::<Instant>(&config, ());
        assert_eq!(result.unresolved, 0);
        assert!(!result.lost_liveness);
        assert_eq!(result.latencies.len(), result.submitted);
        // Commits happen one client-link delay after submission.
        assert!(result.latencies.iter().all(|l| *l <= 0.010));
        assert!(
            result.latencies.iter().all(|l| *l >= 0.005),
            "client link delay applies"
        );
        assert_eq!(result.commit_ratio(), 1.0);
    }

    #[test]
    fn secure_mode_waits_for_all_replicas() {
        let mut config = RunConfig::quick(2);
        config.client_mode = ClientMode::paper_secure();
        let result = run_protocol::<Instant>(&config, ());
        assert_eq!(result.unresolved, 0);
        // The slowest of 4 independent client links dominates: the mean
        // latency exceeds the single-mode mean (max of 4 uniform draws).
        let single = run_protocol::<Instant>(&RunConfig::quick(2), ());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&result.latencies) > mean(&single.latencies) + 0.0005,
            "secure mean {} vs single mean {}",
            mean(&result.latencies),
            mean(&single.latencies)
        );
    }

    #[test]
    fn byzantine_rpc_starves_single_and_wait_all_clients() {
        // A withholding node breaks the client pinned to it…
        let mut config = RunConfig::quick(6);
        config.byzantine_rpc = vec![NodeId::new(0)];
        let single = run_protocol::<Instant>(&config, ());
        assert!(single.unresolved > 0, "client 0 never hears back");
        // …and the paper's wait-for-all secure client makes it worse:
        // every client whose replica set contains the liar stalls.
        config.client_mode = ClientMode::paper_secure();
        let wait_all = run_protocol::<Instant>(&config, ());
        assert!(
            wait_all.unresolved > single.unresolved,
            "wait-all: {} vs single: {}",
            wait_all.unresolved,
            single.unresolved
        );
        // The credence client accepts at t+1 matching observations and
        // rides through the withholder.
        config.client_mode = ClientMode::credence(3);
        let credence = run_protocol::<Instant>(&config, ());
        assert_eq!(credence.unresolved, 0, "quorum reads tolerate the liar");
    }

    #[test]
    fn credence_resolves_at_the_quorum_th_observation() {
        let mut config = RunConfig::quick(7);
        config.client_mode = ClientMode::Credence {
            replication: 4,
            quorum: 2,
        };
        let quorum2 = run_protocol::<Instant>(&config, ());
        config.client_mode = ClientMode::Secure { replication: 4 };
        let wait_all = run_protocol::<Instant>(&config, ());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&quorum2.latencies) < mean(&wait_all.latencies),
            "accepting at the 2nd observation beats waiting for the 4th"
        );
    }

    #[test]
    fn crashing_every_node_is_a_liveness_violation() {
        let mut config = RunConfig::quick(3);
        config.faults = FaultPlan::Crash {
            nodes: NodeId::all(10).collect(),
            at: SimTime::from_secs(10),
        };
        let result = run_protocol::<Instant>(&config, ());
        assert!(result.unresolved > 0);
        assert!(result.lost_liveness);
        assert!(result.commit_ratio() < 1.0);
    }

    #[test]
    fn throughput_series_counts_commits() {
        let config = RunConfig::quick(4);
        let result = run_protocol::<Instant>(&config, ());
        let series = result.throughput();
        let total: u64 = series.bins().iter().map(|b| *b as u64).sum();
        assert_eq!(total as usize, result.latencies.len());
        assert!(
            (series.mean_over(2, 20) - 200.0).abs() < 10.0,
            "≈200 TPS offered"
        );
    }

    #[test]
    fn deterministic() {
        let config = RunConfig::quick(5);
        let a = run_protocol::<Instant>(&config, ());
        let b = run_protocol::<Instant>(&config, ());
        assert_eq!(a.latencies, b.latencies);
        assert_eq!(a.stats, b.stats);
    }
}
