//! The experiment harness: deploys a simulated network, drives the
//! workload through clients, injects the fault schedule and collects
//! the client-observed latency distribution.

use std::collections::BTreeMap;

use stabl_sim::{
    ByzConfig, ByzantineSpec, ByzantineWrapper, CaptureLevel, DetRng, EventCounters, LatencyModel,
    LatencyTopology, NodeId, PanicRecord, Protocol, SimBuilder, SimDuration, SimEvent, SimStats,
    SimTime, Simulation, TimedEvent,
};
use stabl_types::{Transaction, TxId};

use crate::client::RetryPolicy;
use crate::metrics::{Ecdf, EcdfError, StageLatencies, ThroughputSeries};
use crate::{ClientMode, FaultSchedule, WorkloadSpec};

/// Full description of one experiment run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Number of validator nodes (the paper: 10).
    pub n: usize,
    /// Master seed; same seed ⇒ bit-identical run.
    pub seed: u64,
    /// Link latency model (the uniform fallback).
    pub latency: LatencyModel,
    /// Optional region-based latency topology; when set, per-pair models
    /// replace the uniform latency (geo-distributed deployments).
    pub topology: Option<LatencyTopology>,
    /// Simulated run length (the paper: 400 s).
    pub horizon: SimTime,
    /// The client workload.
    pub workload: WorkloadSpec,
    /// Client connection strategy.
    pub client_mode: ClientMode,
    /// Failures to inject (composable: node crashes, partitions,
    /// slowdowns and message-level link faults in one schedule).
    pub faults: FaultSchedule,
    /// Nodes that misbehave at the *protocol* level: their outbound
    /// messages are mutated, equivocated, delayed or withheld by a
    /// [`ByzantineWrapper`] around the chain's protocol.
    pub byzantine: ByzantineSpec,
    /// Byzantine RPC nodes: they process the chain correctly but
    /// *withhold* commit confirmations from their clients (the attack
    /// the secure client defends against, §3/§7).
    pub byzantine_rpc: Vec<NodeId>,
    /// Client-side robustness: per-submission timeout, bounded
    /// exponential backoff and resubmission to alternate nodes. `None`
    /// reproduces the paper's fire-and-forget clients.
    pub retry: Option<RetryPolicy>,
    /// Liveness rule: the run lost liveness if transactions are left
    /// unresolved and nothing committed in this final window.
    pub stall_grace: SimDuration,
    /// Forces the chains' contention models on (lazy genesis funding,
    /// Block-STM conflict accounting) even for a legacy workload.
    /// Traffic-model workloads ([`WorkloadSpec::production`]) enable
    /// them regardless of this flag.
    pub model_contention: bool,
}

impl RunConfig {
    /// A small sane default for examples and tests: 10 nodes, 30 s, the
    /// standard 200 TPS workload, no faults.
    pub fn quick(seed: u64) -> RunConfig {
        let horizon = SimTime::from_secs(30);
        RunConfig {
            n: 10,
            seed,
            latency: LatencyModel::lan(),
            topology: None,
            horizon,
            workload: WorkloadSpec::paper_standard(SimTime::from_secs(25)),
            client_mode: ClientMode::Single,
            faults: FaultSchedule::none(),
            byzantine: ByzantineSpec::none(),
            byzantine_rpc: Vec::new(),
            retry: None,
            stall_grace: SimDuration::from_secs(10),
            model_contention: false,
        }
    }

    /// `true` if this run should enable the chains' contention models
    /// (explicitly requested, or implied by a traffic-model workload).
    pub fn contention_active(&self) -> bool {
        self.model_contention || self.workload.traffic.is_some()
    }
}

/// What one run measured.
///
/// Serialisable so the bench harness can memoise whole runs on disk:
/// latencies round-trip through JSON losslessly (shortest-representation
/// floats), so a cached run is bit-identical to a fresh one.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct RunResult {
    /// Client-observed latencies of committed transactions, seconds.
    pub latencies: Vec<f64>,
    /// Client-observed commit instants (same order as `latencies`).
    pub commit_times: Vec<SimTime>,
    /// Transactions submitted.
    pub submitted: usize,
    /// Transactions never (fully) committed by the end of the run.
    pub unresolved: usize,
    /// `true` if the chain stopped committing (liveness violation ⇒
    /// infinite sensitivity).
    pub lost_liveness: bool,
    /// Fatal node failures during the run.
    pub panics: Vec<PanicRecord>,
    /// Kernel traffic counters.
    pub stats: SimStats,
    /// Client resubmissions performed under the retry policy.
    pub retries: u64,
    /// Transactions whose client exhausted its retries and gave up.
    pub give_ups: u64,
    /// The run horizon (for throughput binning).
    pub horizon: SimTime,
    /// Per-stage latency decomposition of the committed transactions
    /// (queueing / consensus / delivery). Always computed — it derives
    /// from harness bookkeeping, not from event capture, so it is part
    /// of the deterministic artifact at every capture level.
    pub stages: StageLatencies,
}

impl RunResult {
    /// The latency eCDF of the run.
    ///
    /// # Errors
    ///
    /// Fails if nothing committed.
    pub fn ecdf(&self) -> Result<Ecdf, EcdfError> {
        Ecdf::new(self.latencies.iter().copied())
    }

    /// Commits per second over the run.
    pub fn throughput(&self) -> ThroughputSeries {
        ThroughputSeries::from_commit_times(self.commit_times.iter().copied(), self.horizon)
    }

    /// Fraction of submitted transactions that committed.
    pub fn commit_ratio(&self) -> f64 {
        if self.submitted == 0 {
            return 1.0;
        }
        (self.submitted - self.unresolved) as f64 / self.submitted as f64
    }
}

/// Runs one experiment over protocol `P`.
///
/// Clients submit per [`ClientMode`]; a transaction counts as committed
/// when a quorum of the nodes its client contacted reported the commit
/// (for the single mode, exactly the node that received it). The
/// returned latencies are the client-observed commit delays.
///
/// When [`RunConfig::byzantine`] names nodes, the protocol runs inside
/// a [`ByzantineWrapper`] so those nodes deviate at the message layer;
/// when [`RunConfig::retry`] is set, unresolved submissions are retried
/// against alternate nodes with bounded exponential backoff.
///
/// # Panics
///
/// Panics if the workload references more client-facing nodes than the
/// network has, or if the fault schedule is invalid.
pub fn run_protocol<P>(config: &RunConfig, protocol_config: P::Config) -> RunResult
where
    P: Protocol<Request = Transaction, Commit = TxId>,
{
    run_protocol_traced::<P>(config, protocol_config, CaptureLevel::Off).result
}

/// One traced experiment: the deterministic [`RunResult`] plus the
/// captured observability side-channel.
///
/// The trace is *observational only*: `result` is byte-identical across
/// capture levels (the determinism gate tests this), so traced reruns
/// of a cached campaign cell reproduce the exact cached artifact.
#[derive(Clone, Debug)]
pub struct TracedRun {
    /// What the run measured (identical at every capture level).
    pub result: RunResult,
    /// The structured event stream and counters recorded alongside.
    pub trace: RunTrace,
}

/// The observability side-channel of one run.
#[derive(Clone, Debug)]
pub struct RunTrace {
    /// The capture level the run recorded at.
    pub capture: CaptureLevel,
    /// Number of validator nodes (exporters need the pid/tid layout).
    pub n: usize,
    /// The run horizon.
    pub horizon: SimTime,
    /// The recorded events, in `(time, seq)` order after sorting —
    /// kernel events interleaved with harness client events.
    pub events: Vec<TimedEvent>,
    /// Per-kind event counts (also maintained at
    /// [`CaptureLevel::Counters`], where `events` stays empty).
    pub counters: EventCounters,
    /// Events evicted from the bounded recorder ring.
    pub dropped_events: u64,
}

/// Runs one experiment like [`run_protocol`], additionally recording
/// the structured event stream at `capture`.
pub fn run_protocol_traced<P>(
    config: &RunConfig,
    protocol_config: P::Config,
    capture: CaptureLevel,
) -> TracedRun
where
    P: Protocol<Request = Transaction, Commit = TxId>,
{
    if config.byzantine.is_active() {
        run_inner::<ByzantineWrapper<P>>(
            config,
            ByzConfig::new(protocol_config, config.byzantine.clone()),
            capture,
        )
    } else {
        run_inner::<P>(config, protocol_config, capture)
    }
}

/// Moves freshly recorded commits into the `(node, tx) → first commit
/// instant` index, tracking the latest commit seen anywhere and each
/// transaction's first commit *anywhere* (the consensus/delivery stage
/// boundary).
fn drain_commits<P: Protocol<Commit = TxId>>(
    sim: &mut Simulation<P>,
    first_commit: &mut BTreeMap<(u32, TxId), SimTime>,
    earliest_commit: &mut BTreeMap<TxId, SimTime>,
    last_commit: &mut SimTime,
) {
    for record in sim.take_commits() {
        first_commit
            .entry((record.node.as_u32(), record.commit))
            .or_insert(record.time);
        // Commits drain in kernel time order, so the first insert wins.
        earliest_commit.entry(record.commit).or_insert(record.time);
        *last_commit = (*last_commit).max(record.time);
    }
}

/// The instant at which a client with observations from `contacted`
/// (minus withholding Byzantine RPC nodes) collects its `quorum`-th
/// commit confirmation, if it has.
fn resolution(
    contacted: &[NodeId],
    byzantine_rpc: &[NodeId],
    id: TxId,
    quorum: usize,
    first_commit: &BTreeMap<(u32, TxId), SimTime>,
) -> Option<SimTime> {
    let mut observed: Vec<SimTime> = contacted
        .iter()
        .filter(|node| !byzantine_rpc.contains(node))
        .filter_map(|node| first_commit.get(&(node.as_u32(), id)).copied())
        .collect();
    if observed.len() < quorum {
        return None;
    }
    observed.sort_unstable();
    Some(observed[quorum - 1])
}

fn run_inner<P>(config: &RunConfig, protocol_config: P::Config, capture: CaptureLevel) -> TracedRun
where
    P: Protocol<Request = Transaction, Commit = TxId>,
{
    let front_nodes = config.workload.clients.min(config.n);
    let mut builder = SimBuilder::new(config.n, config.seed);
    builder.latency(config.latency);
    builder.capture(capture);
    if let Some(topology) = config.topology.clone() {
        builder.topology(topology);
    }
    let mut sim = builder.build::<P>(protocol_config);
    config.faults.schedule(&mut sim);

    // Clients reach their nodes over the same network fabric: each
    // submission pays an independent client-link delay.
    let mut client_rng = DetRng::new(config.seed ^ 0xC11E_17DE_1A75_0000);
    let submissions = config.workload.generate_seeded(config.seed);
    // The nodes each submission has been sent to, grown by retries.
    let mut contacted: Vec<Vec<NodeId>> = submissions
        .iter()
        .map(|s| config.client_mode.nodes_for(s.client, front_nodes))
        .collect();
    // Earliest instant each submission's request reaches any validator:
    // the queueing/consensus stage boundary.
    let mut first_arrival: Vec<SimTime> = vec![SimTime::MAX; submissions.len()];
    for (i, submission) in submissions.iter().enumerate() {
        for node in &contacted[i] {
            let delay = config.latency.sample(&mut client_rng);
            let arrives = submission.at + delay;
            first_arrival[i] = first_arrival[i].min(arrives);
            sim.schedule_request(arrives, *node, submission.transaction);
            sim.record_event(
                submission.at,
                SimEvent::ClientSubmitted {
                    client: submission.client as u64,
                    node: *node,
                },
            );
        }
    }

    let mut first_commit: BTreeMap<(u32, TxId), SimTime> = BTreeMap::new();
    let mut earliest_commit: BTreeMap<TxId, SimTime> = BTreeMap::new();
    let mut last_commit = SimTime::ZERO;
    let mut retries = 0u64;
    let mut give_ups = 0u64;
    let quorum = config.client_mode.required_quorum();

    if let Some(policy) = config.retry {
        // Timeout agenda: at each deadline, run the kernel up to that
        // instant and decide per pending submission whether to retry.
        // BTreeMap keeps deadlines in deterministic ascending order.
        let mut agenda: BTreeMap<SimTime, Vec<(usize, u32)>> = BTreeMap::new();
        for (i, submission) in submissions.iter().enumerate() {
            let deadline = submission.at + policy.timeout;
            if deadline < config.horizon {
                agenda.entry(deadline).or_default().push((i, 0));
            }
        }
        while let Some((deadline, batch)) = agenda.pop_first() {
            sim.run_until(deadline);
            drain_commits(
                &mut sim,
                &mut first_commit,
                &mut earliest_commit,
                &mut last_commit,
            );
            for (i, attempt) in batch {
                let submission = &submissions[i];
                let id = submission.transaction.id();
                if resolution(
                    &contacted[i],
                    &config.byzantine_rpc,
                    id,
                    quorum,
                    &first_commit,
                )
                .is_some()
                {
                    continue;
                }
                if attempt >= policy.max_retries {
                    give_ups += 1;
                    sim.record_event(
                        deadline,
                        SimEvent::ClientGaveUp {
                            client: submission.client as u64,
                        },
                    );
                    continue;
                }
                retries += 1;
                let resubmit_at = deadline + policy.backoff_for(attempt);
                // Walk one replica set further along the front-node
                // ring each attempt, reaching nodes the original
                // submission never touched.
                let shift = (attempt as usize + 1) * config.client_mode.replication();
                for node in config
                    .client_mode
                    .nodes_for(submission.client + shift, front_nodes)
                {
                    let delay = config.latency.sample(&mut client_rng);
                    let arrives = resubmit_at + delay;
                    first_arrival[i] = first_arrival[i].min(arrives);
                    sim.schedule_request(arrives, node, submission.transaction);
                    sim.record_event(
                        resubmit_at,
                        SimEvent::ClientRetried {
                            client: submission.client as u64,
                            node,
                        },
                    );
                    if !contacted[i].contains(&node) {
                        contacted[i].push(node);
                    }
                }
                let next_deadline = resubmit_at + policy.timeout;
                if next_deadline < config.horizon {
                    agenda
                        .entry(next_deadline)
                        .or_default()
                        .push((i, attempt + 1));
                }
            }
        }
    }
    sim.run_until(config.horizon);
    drain_commits(
        &mut sim,
        &mut first_commit,
        &mut earliest_commit,
        &mut last_commit,
    );

    let mut latencies = Vec::with_capacity(submissions.len());
    let mut commit_times = Vec::with_capacity(submissions.len());
    let mut unresolved = 0usize;
    let mut stages = StageLatencies::new();
    for (i, submission) in submissions.iter().enumerate() {
        let id = submission.transaction.id();
        // Observations the client can actually collect: Byzantine RPC
        // nodes withhold theirs.
        match resolution(
            &contacted[i],
            &config.byzantine_rpc,
            id,
            quorum,
            &first_commit,
        ) {
            Some(resolved_at) => {
                latencies.push((resolved_at - submission.at).as_secs_f64());
                commit_times.push(resolved_at);
                // Stage split: submit → first arrival → first commit
                // anywhere → the client's quorum resolution. Saturating
                // since a commit can only follow some arrival, but the
                // *observed* earliest pair may interleave under retries.
                let arrived = first_arrival[i];
                let committed = earliest_commit.get(&id).copied().unwrap_or(resolved_at);
                stages.record(
                    arrived.saturating_since(submission.at),
                    committed.saturating_since(arrived),
                    resolved_at.saturating_since(committed),
                );
            }
            None => unresolved += 1,
        }
    }

    let lost_liveness = unresolved > 0 && last_commit + config.stall_grace < config.horizon;

    let result = RunResult {
        latencies,
        commit_times,
        submitted: submissions.len(),
        unresolved,
        lost_liveness,
        panics: sim.panics().to_vec(),
        stats: sim.stats(),
        retries,
        give_ups,
        horizon: config.horizon,
        stages,
    };
    let dropped_events = sim.recorder().dropped_events();
    let counters = sim.event_counters();
    let mut events = sim.take_events();
    // Harness client events were recorded at scheduling time, before
    // the kernel events they precede on the simulated clock: re-sort
    // into timeline order (seq breaks ties deterministically).
    events.sort_by_key(|e| (e.time, e.seq));
    TracedRun {
        result,
        trace: RunTrace {
            capture,
            n: config.n,
            horizon: config.horizon,
            events,
            counters,
            dropped_events,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabl_sim::{Ctx, NodeId};

    /// A toy chain that commits every request everywhere after one
    /// broadcast hop — enough to validate the harness bookkeeping.
    struct Instant;

    impl Protocol for Instant {
        type Msg = Transaction;
        type Request = Transaction;
        type Commit = TxId;
        type Timer = ();
        type Config = ();

        fn new(_: NodeId, _: usize, _: &(), _: &mut Ctx<'_, Self>) -> Self {
            Instant
        }
        fn on_message(&mut self, _: NodeId, tx: Transaction, ctx: &mut Ctx<'_, Self>) {
            ctx.commit(tx.id());
        }
        fn on_timer(&mut self, _: (), _: &mut Ctx<'_, Self>) {}
        fn on_request(&mut self, tx: Transaction, ctx: &mut Ctx<'_, Self>) {
            ctx.broadcast(tx);
            ctx.commit(tx.id());
        }
        fn on_restart(&mut self, _: &mut Ctx<'_, Self>) {}
    }

    #[test]
    fn single_mode_resolves_at_receiving_node() {
        let config = RunConfig::quick(1);
        let result = run_protocol::<Instant>(&config, ());
        assert_eq!(result.unresolved, 0);
        assert!(!result.lost_liveness);
        assert_eq!(result.latencies.len(), result.submitted);
        // Commits happen one client-link delay after submission.
        assert!(result.latencies.iter().all(|l| *l <= 0.010));
        assert!(
            result.latencies.iter().all(|l| *l >= 0.005),
            "client link delay applies"
        );
        assert_eq!(result.commit_ratio(), 1.0);
    }

    #[test]
    fn secure_mode_waits_for_all_replicas() {
        let mut config = RunConfig::quick(2);
        config.client_mode = ClientMode::paper_secure();
        let result = run_protocol::<Instant>(&config, ());
        assert_eq!(result.unresolved, 0);
        // The slowest of 4 independent client links dominates: the mean
        // latency exceeds the single-mode mean (max of 4 uniform draws).
        let single = run_protocol::<Instant>(&RunConfig::quick(2), ());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&result.latencies) > mean(&single.latencies) + 0.0005,
            "secure mean {} vs single mean {}",
            mean(&result.latencies),
            mean(&single.latencies)
        );
    }

    #[test]
    fn byzantine_rpc_starves_single_and_wait_all_clients() {
        // A withholding node breaks the client pinned to it…
        let mut config = RunConfig::quick(6);
        config.byzantine_rpc = vec![NodeId::new(0)];
        let single = run_protocol::<Instant>(&config, ());
        assert!(single.unresolved > 0, "client 0 never hears back");
        // …and the paper's wait-for-all secure client makes it worse:
        // every client whose replica set contains the liar stalls.
        config.client_mode = ClientMode::paper_secure();
        let wait_all = run_protocol::<Instant>(&config, ());
        assert!(
            wait_all.unresolved > single.unresolved,
            "wait-all: {} vs single: {}",
            wait_all.unresolved,
            single.unresolved
        );
        // The credence client accepts at t+1 matching observations and
        // rides through the withholder.
        config.client_mode = ClientMode::credence(3);
        let credence = run_protocol::<Instant>(&config, ());
        assert_eq!(credence.unresolved, 0, "quorum reads tolerate the liar");
    }

    #[test]
    fn credence_resolves_at_the_quorum_th_observation() {
        let mut config = RunConfig::quick(7);
        config.client_mode = ClientMode::Credence {
            replication: 4,
            quorum: 2,
        };
        let quorum2 = run_protocol::<Instant>(&config, ());
        config.client_mode = ClientMode::Secure { replication: 4 };
        let wait_all = run_protocol::<Instant>(&config, ());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&quorum2.latencies) < mean(&wait_all.latencies),
            "accepting at the 2nd observation beats waiting for the 4th"
        );
    }

    #[test]
    fn crashing_every_node_is_a_liveness_violation() {
        let mut config = RunConfig::quick(3);
        config.faults = FaultSchedule::crash(NodeId::all(10).collect(), SimTime::from_secs(10));
        let result = run_protocol::<Instant>(&config, ());
        assert!(result.unresolved > 0);
        assert!(result.lost_liveness);
        assert!(result.commit_ratio() < 1.0);
    }

    /// A tight retry policy so retries land well inside the 30 s quick
    /// horizon.
    fn tight_retry() -> RetryPolicy {
        RetryPolicy {
            timeout: SimDuration::from_secs(2),
            max_retries: 3,
            backoff_base: SimDuration::from_millis(500),
            backoff_factor_permille: 2000,
            backoff_cap: SimDuration::from_secs(4),
        }
    }

    #[test]
    fn retry_is_a_noop_when_everything_resolves() {
        let mut config = RunConfig::quick(8);
        config.retry = Some(tight_retry());
        let with_retry = run_protocol::<Instant>(&config, ());
        config.retry = None;
        let without = run_protocol::<Instant>(&config, ());
        assert_eq!(with_retry.retries, 0);
        assert_eq!(with_retry.give_ups, 0);
        assert_eq!(with_retry.latencies, without.latencies);
        assert_eq!(with_retry.stats, without.stats);
    }

    #[test]
    fn retry_routes_around_a_withholding_rpc_node() {
        // Node 0 withholds its outbound protocol messages AND its RPC
        // confirmations: without retries, every single-mode submission
        // pinned to it stays unresolved.
        let mut config = RunConfig::quick(6);
        config.byzantine =
            ByzantineSpec::new([NodeId::new(0)], stabl_sim::ByzantineBehavior::Withhold);
        config.byzantine_rpc = vec![NodeId::new(0)];
        let stuck = run_protocol::<Instant>(&config, ());
        assert!(stuck.unresolved > 0, "client 0 never hears back");
        assert_eq!(stuck.retries, 0);

        // With retries the client resubmits to the next node along the
        // ring and resolves everything.
        config.retry = Some(tight_retry());
        let retried = run_protocol::<Instant>(&config, ());
        assert!(retried.retries > 0, "timeouts trigger resubmission");
        assert_eq!(retried.unresolved, 0, "alternate nodes resolve all");
        assert_eq!(retried.give_ups, 0);
        // Retried transactions pay timeout + backoff before resolving.
        let slowest = retried.latencies.iter().copied().fold(0.0f64, f64::max);
        assert!(slowest > 2.0, "retried latencies include the timeout");
    }

    #[test]
    fn exhausted_retries_count_as_give_ups() {
        let mut config = RunConfig::quick(9);
        config.faults = FaultSchedule::crash(NodeId::all(10).collect(), SimTime::from_secs(5));
        config.retry = Some(tight_retry());
        let result = run_protocol::<Instant>(&config, ());
        assert!(result.retries > 0, "clients retry the dead network");
        assert!(result.give_ups > 0, "then give up after max_retries");
        assert!(result.lost_liveness);
    }

    #[test]
    fn byzantine_withholder_suppresses_traffic() {
        let mut config = RunConfig::quick(11);
        let baseline = run_protocol::<Instant>(&config, ());
        config.byzantine =
            ByzantineSpec::new([NodeId::new(0)], stabl_sim::ByzantineBehavior::Withhold);
        let withheld = run_protocol::<Instant>(&config, ());
        assert!(
            withheld.stats.messages_sent < baseline.stats.messages_sent,
            "node 0's broadcasts are withheld: {} vs {}",
            withheld.stats.messages_sent,
            baseline.stats.messages_sent
        );
        // Single-mode clients of node 0 still resolve: the node commits
        // locally, it just never tells the rest of the network.
        assert_eq!(withheld.unresolved, 0);
    }

    #[test]
    fn composed_adversity_is_deterministic() {
        let mut config = RunConfig::quick(12);
        config.faults = FaultSchedule::link_degrade(
            stabl_sim::LinkFault::all().with_drop(0.05),
            SimTime::from_secs(2),
            SimTime::from_secs(20),
        )
        .and(crate::FaultAction::Slowdown {
            nodes: vec![NodeId::new(8)],
            extra: SimDuration::from_millis(50),
            at: SimTime::from_secs(5),
            until: SimTime::from_secs(15),
        });
        config.byzantine =
            ByzantineSpec::new([NodeId::new(9)], stabl_sim::ByzantineBehavior::Equivocate);
        config.retry = Some(tight_retry());
        let a = run_protocol::<Instant>(&config, ());
        let b = run_protocol::<Instant>(&config, ());
        assert_eq!(a.latencies, b.latencies);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.give_ups, b.give_ups);
        let json_a = serde_json::to_string(&a).expect("serialise");
        let json_b = serde_json::to_string(&b).expect("serialise");
        assert_eq!(json_a, json_b, "byte-identical artifacts");
    }

    #[test]
    fn throughput_series_counts_commits() {
        let config = RunConfig::quick(4);
        let result = run_protocol::<Instant>(&config, ());
        let series = result.throughput();
        let total: u64 = series.bins().iter().map(|b| *b as u64).sum();
        assert_eq!(total as usize, result.latencies.len());
        assert!(
            (series.mean_over(2, 20) - 200.0).abs() < 10.0,
            "≈200 TPS offered"
        );
    }

    #[test]
    fn deterministic() {
        let config = RunConfig::quick(5);
        let a = run_protocol::<Instant>(&config, ());
        let b = run_protocol::<Instant>(&config, ());
        assert_eq!(a.latencies, b.latencies);
        assert_eq!(a.stats, b.stats);
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Any composed fault schedule replayed with the same seed
        /// yields a byte-identical serialised RunResult, and the link
        /// drop/duplication counters match the network's book-keeping.
        #[test]
        fn any_schedule_replays_byte_identically(
            (seed, crash_node, slow_node) in (0u64..1_000, 6u32..8, 8u32..10),
            (drop_pct, dup_pct, with_retry) in (0u8..50, 0u8..50, 0u8..2),
        ) {
            let mut config = RunConfig::quick(seed);
            // A small run keeps the 24 cases fast.
            config.horizon = SimTime::from_secs(8);
            config.workload.end = SimTime::from_secs(6);
            config.workload.tps_per_client = 10;
            config.stall_grace = SimDuration::from_secs(3);
            config.faults = FaultSchedule::crash(
                vec![NodeId::new(crash_node)],
                SimTime::from_secs(2),
            )
            .and(crate::FaultAction::Slowdown {
                nodes: vec![NodeId::new(slow_node)],
                extra: SimDuration::from_millis(100),
                at: SimTime::from_secs(1),
                until: SimTime::from_secs(5),
            })
            .and(crate::FaultAction::LinkDegrade {
                fault: stabl_sim::LinkFault::all()
                    .with_drop(f64::from(drop_pct) / 100.0)
                    .with_duplicate(f64::from(dup_pct) / 100.0),
                at: SimTime::from_secs(1),
                until: SimTime::from_secs(6),
            });
            if with_retry == 1 {
                config.retry = Some(tight_retry());
            }
            let a = run_protocol::<Instant>(&config, ());
            let b = run_protocol::<Instant>(&config, ());
            let json_a = serde_json::to_string(&a).expect("serialise");
            let json_b = serde_json::to_string(&b).expect("serialise");
            prop_assert_eq!(json_a, json_b, "same seed must replay byte-identically");
            prop_assert!(drop_pct == 0 || a.stats.messages_dropped_link > 0);
            prop_assert!(dup_pct == 0 || a.stats.messages_duplicated_link > 0);
        }

        /// Tracing observes, never steers: across every capture level
        /// the serialised RunResult is byte-identical for arbitrary
        /// fault schedules, while the recorder's own output grows
        /// monotonically with the level.
        #[test]
        fn capture_level_never_changes_the_result(
            (seed, crash_node, drop_pct) in (0u64..1_000, 5u32..10, 0u8..50),
            (crash_at, heal_at) in (1u64..4, 4u64..7),
        ) {
            let mut config = RunConfig::quick(seed);
            config.horizon = SimTime::from_secs(8);
            config.workload.end = SimTime::from_secs(6);
            config.workload.tps_per_client = 10;
            config.stall_grace = SimDuration::from_secs(3);
            config.faults = FaultSchedule::crash(
                vec![NodeId::new(crash_node)],
                SimTime::from_secs(crash_at),
            )
            .and(crate::FaultAction::LinkDegrade {
                fault: stabl_sim::LinkFault::all().with_drop(f64::from(drop_pct) / 100.0),
                at: SimTime::from_secs(crash_at),
                until: SimTime::from_secs(heal_at),
            });
            config.retry = Some(tight_retry());
            let off = run_protocol_traced::<Instant>(&config, (), CaptureLevel::Off);
            let events = run_protocol_traced::<Instant>(&config, (), CaptureLevel::Events);
            let full = run_protocol_traced::<Instant>(&config, (), CaptureLevel::Full);
            let json_off = serde_json::to_string(&off.result).expect("serialise");
            let json_events = serde_json::to_string(&events.result).expect("serialise");
            let json_full = serde_json::to_string(&full.result).expect("serialise");
            prop_assert_eq!(&json_off, &json_events, "Events capture steered the run");
            prop_assert_eq!(&json_off, &json_full, "Full capture steered the run");
            prop_assert!(off.trace.events.is_empty(), "Off must record nothing");
            prop_assert_eq!(off.trace.counters.total(), 0);
            prop_assert!(
                events.trace.events.len() + events.trace.dropped_events as usize
                    <= full.trace.events.len() + full.trace.dropped_events as usize,
                "Full must record at least what Events records"
            );
            prop_assert!(full.trace.counters.commits > 0, "the run commits");
        }
    }
}
