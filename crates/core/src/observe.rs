//! Exporters for the structured event stream: JSON-Lines dumps and
//! Chrome-trace/Perfetto timelines.
//!
//! Two formats, two audiences:
//!
//! * [`events_jsonl`] — one self-describing JSON object per event,
//!   greppable and `jq`-able, lossless (every recorded event appears).
//! * [`chrome_trace_json`] — the Chrome trace-event format, loadable in
//!   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`: one
//!   track per validator with consensus-phase spans ([`Ctx::span`]
//!   marks become duration slices) and instants for node lifecycle,
//!   fault windows, client activity and commits. Per-message hops and
//!   log lines are deliberately left to the JSONL dump — a 400 s run
//!   ships millions of hops, which would drown the timeline.
//!
//! Both exports are pure functions of the [`RunTrace`], so they inherit
//! its determinism: same seed, same bytes.
//!
//! [`Ctx::span`]: stabl_sim::Ctx::span

use stabl_sim::{SimEvent, SimStats, SimTime};

use crate::harness::RunTrace;

/// Serialises every recorded event as one JSON object per line
/// (`{"t_us":…,"seq":…,"kind":…,…}`), in timeline order.
pub fn events_jsonl(trace: &RunTrace) -> String {
    let mut out = String::new();
    for event in &trace.events {
        // stabl-lint: allow(R-002, in-memory serialisation of SimEvent is infallible and a Result signature would push an impossible branch onto every exporter caller)
        out.push_str(&serde_json::to_string(event).expect("event serialisation cannot fail"));
        out.push('\n');
    }
    out
}

/// Serialises the run's aggregate kernel counters — traffic plus the
/// contention model's re-execution and pool-rejection counts — as one
/// JSON object (newline terminated). The stats companion to the event
/// exports: a trace bundle carries the aggregates without re-parsing
/// the JSONL stream.
pub fn stats_json(stats: &SimStats) -> String {
    // stabl-lint: allow(R-002, in-memory serialisation of SimStats is infallible and a Result signature would push an impossible branch onto every exporter caller)
    let mut out = serde_json::to_string_pretty(stats).expect("stats serialisation cannot fail");
    out.push('\n');
    out
}

/// The pid all validator tracks live under in the Chrome trace.
const TRACE_PID: u64 = 1;
/// The tid of the run-scoped track (faults, client activity).
const RUN_TID: u64 = 0;

fn tid_of(node: stabl_sim::NodeId) -> u64 {
    u64::from(node.as_u32()) + 1
}

/// Renders the trace in the Chrome trace-event JSON format (see the
/// module docs for what is included).
///
/// `label` names the process track (typically the chain under test).
/// Events are emitted in non-decreasing `ts` order, which the CI smoke
/// job asserts.
pub fn chrome_trace_json(trace: &RunTrace, label: &str) -> String {
    let mut events: Vec<serde_json::Value> = Vec::new();

    // Track-naming metadata first (ts 0 keeps the stream monotonic).
    events.push(serde_json::json!({
        "name": "process_name", "ph": "M", "pid": TRACE_PID, "tid": RUN_TID, "ts": 0u64,
        "args": serde_json::json!({"name": label}),
    }));
    events.push(serde_json::json!({
        "name": "thread_name", "ph": "M", "pid": TRACE_PID, "tid": RUN_TID, "ts": 0u64,
        "args": serde_json::json!({"name": "run (faults, clients)"}),
    }));
    for node in 0..trace.n {
        events.push(serde_json::json!({
            "name": "thread_name", "ph": "M", "pid": TRACE_PID, "tid": node as u64 + 1, "ts": 0u64,
            "args": serde_json::json!({"name": format!("node {node}")}),
        }));
    }

    // Phase marks become duration slices: each span runs to the node's
    // next mark, or to the horizon for the last one.
    let mut phase_marks: Vec<Vec<(SimTime, &'static str)>> = vec![Vec::new(); trace.n];
    for timed in &trace.events {
        if let SimEvent::Phase { node, phase } = &timed.event {
            phase_marks[node.index()].push((timed.time, phase));
        }
    }
    for (node, marks) in phase_marks.iter().enumerate() {
        for (i, (start, phase)) in marks.iter().enumerate() {
            let end = marks
                .get(i + 1)
                .map(|(next, _)| *next)
                .unwrap_or(trace.horizon)
                .max(*start);
            events.push(serde_json::json!({
                "name": *phase, "ph": "X", "cat": "phase",
                "pid": TRACE_PID, "tid": node as u64 + 1,
                "ts": start.as_micros(), "dur": (end.saturating_since(*start)).as_micros(),
            }));
        }
    }

    for timed in &trace.events {
        let ts = timed.time.as_micros();
        let instant = |name: String, tid: u64, scope: &str| {
            serde_json::json!({
                "name": name, "ph": "i", "s": scope, "cat": "event",
                "pid": TRACE_PID, "tid": tid, "ts": ts,
            })
        };
        match &timed.event {
            SimEvent::NodeCrashed { node } => {
                events.push(instant("crashed".into(), tid_of(*node), "t"));
            }
            SimEvent::NodeRestarted { node } => {
                events.push(instant("restarted".into(), tid_of(*node), "t"));
            }
            SimEvent::NodePanicked { node } => {
                events.push(instant("panicked".into(), tid_of(*node), "t"));
            }
            SimEvent::FaultActivated { kind } => {
                events.push(instant(format!("fault on: {}", kind.name()), RUN_TID, "g"));
            }
            SimEvent::FaultCleared { kind } => {
                events.push(instant(format!("fault off: {}", kind.name()), RUN_TID, "g"));
            }
            SimEvent::ClientSubmitted { client, node } => {
                events.push(instant(
                    format!("submit c{client}→n{}", node.as_u32()),
                    RUN_TID,
                    "p",
                ));
            }
            SimEvent::ClientRetried { client, node } => {
                events.push(instant(
                    format!("retry c{client}→n{}", node.as_u32()),
                    RUN_TID,
                    "p",
                ));
            }
            SimEvent::ClientGaveUp { client } => {
                events.push(instant(format!("give up c{client}"), RUN_TID, "p"));
            }
            SimEvent::Committed { node } => {
                events.push(instant("commit".into(), tid_of(*node), "t"));
            }
            // Spans were rendered above; hops, logs and gauge samples
            // stay in JSONL (gauges get their own timeline in the
            // diagnose HTML report).
            SimEvent::Phase { .. }
            | SimEvent::MessageSent { .. }
            | SimEvent::MessageDelivered { .. }
            | SimEvent::MessageDropped { .. }
            | SimEvent::TimerFired { .. }
            | SimEvent::TimerStale { .. }
            | SimEvent::RequestDelivered { .. }
            | SimEvent::RequestDropped { .. }
            | SimEvent::Log { .. }
            | SimEvent::Gauge { .. } => {}
        }
    }

    // The viewer tolerates any order but the CI gate (and humans
    // reading the raw JSON) want a monotonic stream.
    events.sort_by_key(ts_of);
    serde_json::to_string(&serde_json::json!({
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }))
    // stabl-lint: allow(R-002, in-memory serialisation of the Chrome trace value is infallible and a Result signature would push an impossible branch onto every exporter caller)
    .expect("trace serialisation cannot fail")
}

fn ts_of(event: &serde_json::Value) -> u64 {
    if let serde_json::Value::Map(entries) = event {
        for (key, value) in entries {
            if key == "ts" {
                if let serde_json::Value::U64(ts) = value {
                    return *ts;
                }
            }
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::RunTrace;
    use stabl_sim::{CaptureLevel, EventCounters, NodeId, TimedEvent};

    fn trace_with(events: Vec<TimedEvent>) -> RunTrace {
        RunTrace {
            capture: CaptureLevel::Events,
            n: 2,
            horizon: SimTime::from_secs(10),
            events,
            counters: EventCounters::default(),
            dropped_events: 0,
        }
    }

    fn timed(ms: u64, seq: u64, event: SimEvent) -> TimedEvent {
        TimedEvent {
            time: SimTime::from_millis(ms),
            seq,
            event,
        }
    }

    #[test]
    fn jsonl_is_one_event_per_line() {
        let trace = trace_with(vec![
            timed(
                5,
                0,
                SimEvent::Committed {
                    node: NodeId::new(0),
                },
            ),
            timed(
                7,
                1,
                SimEvent::NodeCrashed {
                    node: NodeId::new(1),
                },
            ),
        ]);
        let jsonl = events_jsonl(&trace);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"committed\""), "{}", lines[0]);
        assert!(lines[1].contains("\"t_us\":7000"), "{}", lines[1]);
    }

    #[test]
    fn chrome_trace_parses_and_is_monotonic() {
        let trace = trace_with(vec![
            timed(
                1,
                0,
                SimEvent::Phase {
                    node: NodeId::new(0),
                    phase: "round",
                },
            ),
            timed(
                2,
                1,
                SimEvent::Committed {
                    node: NodeId::new(0),
                },
            ),
            timed(
                3,
                2,
                SimEvent::Phase {
                    node: NodeId::new(0),
                    phase: "round",
                },
            ),
            timed(
                4,
                3,
                SimEvent::FaultActivated {
                    kind: stabl_sim::FaultKind::Partition,
                },
            ),
        ]);
        let json = chrome_trace_json(&trace, "testchain");
        let value: serde_json::Value = serde_json::from_str(&json).expect("parses");
        let serde_json::Value::Map(top) = &value else {
            panic!("expected object");
        };
        let events = top
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .expect("traceEvents present");
        let serde_json::Value::Seq(events) = events else {
            panic!("expected array");
        };
        assert!(events.len() >= 6, "metadata + phases + instants");
        let stamps: Vec<u64> = events.iter().map(ts_of).collect();
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]), "{stamps:?}");
        // The first phase slice runs until the next mark: 2 ms.
        assert!(json.contains("\"dur\":2000"), "phase duration rendered");
        // The last phase slice extends to the horizon.
        assert!(json.contains(&format!("\"dur\":{}", 10_000_000 - 3_000)));
        assert!(json.contains("testchain"));
    }

    #[test]
    fn stats_json_carries_the_contention_counters() {
        let stats = SimStats {
            messages_sent: 3,
            speculative_reexecutions: 7,
            conflict_aborts: 5,
            pool_evictions: 2,
            pool_replacements: 1,
            ..SimStats::default()
        };
        let json = stats_json(&stats);
        assert!(json.ends_with('\n'));
        for needle in [
            "\"messages_sent\": 3",
            "\"speculative_reexecutions\": 7",
            "\"conflict_aborts\": 5",
            "\"pool_evictions\": 2",
            "\"pool_replacements\": 1",
        ] {
            assert!(json.contains(needle), "{needle} missing from {json}");
        }
        let back: SimStats = serde_json::from_str(&json).expect("round-trips");
        assert_eq!(back, stats);
    }

    #[test]
    fn empty_trace_still_renders_valid_json() {
        let trace = trace_with(Vec::new());
        let json = chrome_trace_json(&trace, "idle");
        let value: serde_json::Value = serde_json::from_str(&json).expect("parses");
        assert!(matches!(value, serde_json::Value::Map(_)));
        assert_eq!(events_jsonl(&trace), "");
    }
}
