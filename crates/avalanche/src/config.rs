//! Configuration of the simulated Avalanche (C-Chain) validator.

use stabl_sim::SimDuration;

/// Tunables of the Snowball consensus, transaction gossip and inbound
/// throttling of a simulated Avalanche validator.
///
/// Defaults model AvalancheGo v1.10.18 / coreth at the scale of the
/// Stabl testbed: 2 s block cadence, ≤ 714 transfer transactions per
/// block (15 M gas / 21 k gas), sampling parameters scaled down to the
/// 10-node network, and default message throttling.
#[derive(Clone, Debug)]
pub struct AvalancheConfig {
    /// Snowball sample size per poll.
    pub k: usize,
    /// Chits required for a successful poll (`α > k/2`).
    pub alpha: usize,
    /// Consecutive successful polls required to decide.
    pub beta: u32,
    /// Poll period while a height is undecided.
    pub query_interval: SimDuration,
    /// How long a poll waits for chits before being finalised short.
    pub query_timeout: SimDuration,
    /// Block production cadence.
    pub block_interval: SimDuration,
    /// Maximum transactions per block (the 15 M gas limit).
    pub max_block_txs: usize,
    /// Transaction pool capacity.
    pub pool_capacity: usize,
    /// Announce batching period for newly received transactions.
    pub announce_interval: SimDuration,
    /// Gossip fan-out (peers per announce/regossip batch).
    pub gossip_fanout: usize,
    /// Pending age after which a transaction is re-gossiped.
    pub stale_age: SimDuration,
    /// Re-gossip period for stale transactions.
    pub regossip_interval: SimDuration,
    /// Maximum stale transactions per re-gossip batch (drawn in map
    /// iteration order, i.e. effectively at random — coreth's
    /// `legacypool` behaviour the paper highlights).
    pub regossip_batch: usize,
    // Throttling.
    /// CPU meter half-life.
    pub cpu_half_life: SimDuration,
    /// CPU usage target (`targeter.TargetUsage`).
    pub cpu_quota: f64,
    /// Unprocessed-message cap (`bufferThrottler`).
    pub max_unprocessed: usize,
    /// Drain attempt period for parked messages.
    pub drain_interval: SimDuration,
    // Message costs (core-seconds).
    /// Cost of processing one gossiped transaction.
    pub cost_per_tx: f64,
    /// Cost of processing a query or chit.
    pub cost_query: f64,
    /// Base cost of processing a block proposal.
    pub cost_proposal_base: f64,
    /// Per-transaction cost of processing a block proposal.
    pub cost_proposal_per_tx: f64,
    /// Execution cost per committed transaction.
    pub cost_exec_per_tx: f64,
    /// Models production-shaped contention: funds the whole declared
    /// account population lazily instead of the paper's 256 prefunded
    /// accounts. Off by default so paper-standard runs are
    /// byte-identical.
    pub model_contention: bool,
}

impl AvalancheConfig {
    /// The sampling parameters effective in an `n`-node network: `k` is
    /// clamped to the peer count and `α` scaled to keep its ratio (the
    /// AvalancheGo behaviour on networks smaller than the default `k`).
    pub fn effective_sampling(&self, n: usize) -> (usize, usize) {
        let k_eff = self.k.min(n.saturating_sub(1)).max(1);
        let alpha_eff = (k_eff * self.alpha).div_ceil(self.k).max(k_eff / 2 + 1);
        (k_eff, alpha_eff)
    }
}

impl Default for AvalancheConfig {
    fn default() -> Self {
        AvalancheConfig {
            k: 8,
            alpha: 7,
            beta: 5,
            query_interval: SimDuration::from_millis(100),
            query_timeout: SimDuration::from_millis(300),
            block_interval: SimDuration::from_millis(2_000),
            max_block_txs: 714,
            pool_capacity: 200_000,
            announce_interval: SimDuration::from_millis(800),
            gossip_fanout: 4,
            stale_age: SimDuration::from_secs(30),
            regossip_interval: SimDuration::from_millis(1_000),
            regossip_batch: 1_024,
            cpu_half_life: SimDuration::from_secs(1),
            cpu_quota: 1.2,
            max_unprocessed: 1_024,
            drain_interval: SimDuration::from_millis(50),
            cost_per_tx: 0.000_5,
            cost_query: 0.000_3,
            cost_proposal_base: 0.002,
            cost_proposal_per_tx: 0.000_1,
            cost_exec_per_tx: 0.000_3,
            model_contention: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_consistent() {
        let cfg = AvalancheConfig::default();
        assert!(cfg.alpha * 2 > cfg.k, "alpha must be a majority of k");
        assert!(cfg.alpha <= cfg.k);
        assert_eq!(cfg.effective_sampling(10), (8, 7));
        let (k4, a4) = cfg.effective_sampling(4);
        assert!(
            k4 == 3 && a4 * 2 > k4 && a4 <= k4,
            "scaled params invalid: {k4}/{a4}"
        );
        assert!(cfg.query_timeout > cfg.query_interval);
        assert!(
            cfg.stale_age > cfg.block_interval * 4,
            "steady state never regossips"
        );
        // Analytic lower bound on the baseline load (epidemic gossip
        // reaches each node ≥ 2 times per tx, ~5 proposals per 2 s,
        // execution): the sustained meter level must stay under the
        // quota — the margin is deliberately thin (the paper: default
        // throttling is already marginal at 200 TPS; the node tests
        // observe baseline meter levels of 0.7–1.3 against the 1.2
        // quota).
        let baseline = 200.0 * cfg.cost_per_tx * 2.0
            + (cfg.cost_proposal_base + 400.0 * cfg.cost_proposal_per_tx) * 5.0 / 2.0
            + 200.0 * cfg.cost_exec_per_tx;
        let steady_meter = baseline * 1.44; // CpuMeter steady state
        assert!(
            steady_meter < cfg.cpu_quota,
            "baseline meter {steady_meter} exceeds quota"
        );
        // A full regossip batch is heavy enough to saturate: one batch
        // per second from a few peers exceeds the sustainable rate.
        let storm = cfg.regossip_batch as f64 * cfg.cost_per_tx * 2.5;
        assert!(
            storm > cfg.cpu_quota,
            "regossip storm {storm} would not saturate"
        );
    }
}

impl AvalancheConfig {
    /// Pairs this config with a Byzantine spec, producing the config of
    /// [`ByzantineAvalancheNode`](crate::ByzantineAvalancheNode): the named
    /// nodes run the same protocol but mutate, equivocate, delay or
    /// withhold their outbound messages.
    pub fn with_byzantine(
        self,
        spec: stabl_sim::ByzantineSpec,
    ) -> stabl_sim::ByzConfig<AvalancheConfig> {
        stabl_sim::ByzConfig::new(self, spec)
    }
}
