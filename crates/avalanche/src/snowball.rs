//! The Snowball binary/multi-value consensus loop.
//!
//! Avalanche's Snow family (Snowflake/Snowball, Team Rocket 2020) decides
//! by repeated randomised polling: each round a node queries `k` sampled
//! validators; if at least `α > k/2` answers prefer the same value the
//! node leans towards it, and after `β` consecutive supporting rounds it
//! decides. Crashed nodes stay in the sampling population — a poll that
//! reaches too few live validators simply fails and resets the
//! confidence counter, which is what couples Avalanche's liveness to the
//! fraction of reachable stake (≥ 80 %).

use stabl_types::Hash32;
use std::collections::BTreeMap;

/// One Snowball instance deciding the block of one height.
#[derive(Clone, Debug)]
pub struct Snowball {
    alpha: usize,
    beta: u32,
    preference: Option<Hash32>,
    last_majority: Option<Hash32>,
    confidence: u32,
    strength: BTreeMap<Hash32, u32>,
    decided: Option<Hash32>,
    polls: u64,
    failed_polls: u64,
}

impl Snowball {
    /// Creates an instance with quorum `alpha` and decision threshold
    /// `beta`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` or `beta` is zero.
    pub fn new(alpha: usize, beta: u32) -> Snowball {
        assert!(alpha > 0 && beta > 0, "alpha and beta must be positive");
        Snowball {
            alpha,
            beta,
            preference: None,
            last_majority: None,
            confidence: 0,
            strength: BTreeMap::new(),
            decided: None,
            polls: 0,
            failed_polls: 0,
        }
    }

    /// The decided block hash, if any.
    pub fn decision(&self) -> Option<Hash32> {
        self.decided
    }

    /// The hash this node currently prefers (reported in chits).
    pub fn preference(&self) -> Option<Hash32> {
        self.decided.or(self.preference)
    }

    /// Total polls finalised.
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// Polls that failed to reach an `α` majority.
    pub fn failed_polls(&self) -> u64 {
        self.failed_polls
    }

    /// Considers a newly learned proposal: before any poll succeeded the
    /// node prefers the lowest hash (a deterministic tie-break all
    /// honest nodes share).
    pub fn observe_proposal(&mut self, hash: Hash32) {
        if self.decided.is_some() {
            return;
        }
        match self.preference {
            Some(current) if self.strength.get(&current).copied().unwrap_or(0) > 0 => {}
            Some(current) if current <= hash => {}
            _ => self.preference = Some(hash),
        }
    }

    /// Accounts one finished poll (the chit values that arrived in
    /// time); returns the decision if `β` was just reached.
    pub fn record_poll(&mut self, responses: &[Hash32]) -> Option<Hash32> {
        if self.decided.is_some() {
            return self.decided;
        }
        self.polls += 1;
        let mut counts: BTreeMap<Hash32, usize> = BTreeMap::new();
        for r in responses {
            *counts.entry(*r).or_insert(0) += 1;
        }
        let majority = counts
            .iter()
            .filter(|(_, c)| **c >= self.alpha)
            .max_by_key(|(hash, c)| (**c, std::cmp::Reverse(**hash)))
            .map(|(hash, _)| *hash);
        let Some(winner) = majority else {
            self.failed_polls += 1;
            self.confidence = 0;
            self.last_majority = None;
            return None;
        };
        let strength = self.strength.entry(winner).or_insert(0);
        *strength += 1;
        let strength = *strength;
        let pref_strength = self
            .preference
            .and_then(|p| self.strength.get(&p).copied())
            .unwrap_or(0);
        if strength > pref_strength || self.preference.is_none() {
            self.preference = Some(winner);
        }
        if self.last_majority == Some(winner) {
            self.confidence += 1;
        } else {
            self.last_majority = Some(winner);
            self.confidence = 1;
        }
        if self.confidence >= self.beta {
            self.decided = Some(winner);
        }
        self.decided
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn hash(byte: u8) -> Hash32 {
        Hash32::from_bytes([byte; 32])
    }

    proptest! {
        /// A decision, once made, never changes — whatever polls follow.
        #[test]
        fn decision_is_immutable(
            polls in proptest::collection::vec(
                proptest::collection::vec(0u8..4, 0..8), 1..40
            )
        ) {
            let mut sb = Snowball::new(3, 2);
            let mut decided: Option<Hash32> = None;
            for poll in polls {
                let values: Vec<Hash32> = poll.into_iter().map(hash).collect();
                let result = sb.record_poll(&values);
                if let Some(first) = decided {
                    prop_assert_eq!(result, Some(first));
                } else {
                    decided = result;
                }
            }
        }

        /// β consecutive unanimous polls always decide.
        #[test]
        fn unanimity_always_converges(beta in 1u32..8, value in 0u8..16) {
            let mut sb = Snowball::new(4, beta);
            let poll = vec![hash(value); 5];
            for i in 0..beta {
                let result = sb.record_poll(&poll);
                if i + 1 < beta {
                    prop_assert_eq!(result, None);
                } else {
                    prop_assert_eq!(result, Some(hash(value)));
                }
            }
        }

        /// Poll accounting: polls() counts every recorded poll before
        /// the decision, failed_polls() only the sub-α ones.
        #[test]
        fn poll_accounting(
            polls in proptest::collection::vec(
                proptest::collection::vec(0u8..3, 0..6), 0..30
            )
        ) {
            let mut sb = Snowball::new(4, u32::MAX);
            let mut expected_failed = 0u64;
            let mut expected_total = 0u64;
            for poll in polls {
                let values: Vec<Hash32> = poll.into_iter().map(hash).collect();
                let mut counts = std::collections::BTreeMap::new();
                for v in &values {
                    *counts.entry(*v).or_insert(0usize) += 1;
                }
                let has_majority = counts.values().any(|c| *c >= 4);
                sb.record_poll(&values);
                expected_total += 1;
                if !has_majority {
                    expected_failed += 1;
                }
            }
            prop_assert_eq!(sb.polls(), expected_total);
            prop_assert_eq!(sb.failed_polls(), expected_failed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(byte: u8) -> Hash32 {
        Hash32::from_bytes([byte; 32])
    }

    #[test]
    fn unanimous_polls_decide_after_beta() {
        let mut sb = Snowball::new(4, 3);
        sb.observe_proposal(h(1));
        assert_eq!(sb.record_poll(&[h(1); 5]), None);
        assert_eq!(sb.record_poll(&[h(1); 5]), None);
        assert_eq!(sb.record_poll(&[h(1); 5]), Some(h(1)));
        assert_eq!(sb.decision(), Some(h(1)));
    }

    #[test]
    fn failed_poll_resets_confidence() {
        let mut sb = Snowball::new(4, 2);
        sb.record_poll(&[h(1); 5]);
        // Only 3 of 5 agree: below alpha, confidence resets.
        sb.record_poll(&[h(1), h(1), h(1), h(2), h(2)]);
        assert_eq!(sb.failed_polls(), 1);
        sb.record_poll(&[h(1); 5]);
        assert_eq!(sb.record_poll(&[h(1); 5]), Some(h(1)));
    }

    #[test]
    fn preference_flips_to_stronger_value() {
        let mut sb = Snowball::new(3, 10);
        sb.observe_proposal(h(5));
        assert_eq!(sb.preference(), Some(h(5)));
        sb.record_poll(&[h(2); 4]);
        sb.record_poll(&[h(2); 4]);
        assert_eq!(sb.preference(), Some(h(2)), "polled majority overrides");
    }

    #[test]
    fn observe_prefers_lowest_hash_until_polls_speak() {
        let mut sb = Snowball::new(3, 4);
        sb.observe_proposal(h(7));
        sb.observe_proposal(h(3));
        sb.observe_proposal(h(9));
        assert_eq!(sb.preference(), Some(h(3)));
        // Once polls established strength, later lower proposals don't flip.
        sb.record_poll(&[h(3); 4]);
        sb.observe_proposal(h(1));
        assert_eq!(sb.preference(), Some(h(3)));
    }

    #[test]
    fn short_poll_below_alpha_fails() {
        let mut sb = Snowball::new(4, 2);
        assert_eq!(sb.record_poll(&[h(1), h(1), h(1)]), None);
        assert_eq!(sb.failed_polls(), 1);
    }

    #[test]
    fn decision_is_stable() {
        let mut sb = Snowball::new(2, 1);
        assert_eq!(sb.record_poll(&[h(1), h(1)]), Some(h(1)));
        assert_eq!(
            sb.record_poll(&[h(2), h(2)]),
            Some(h(1)),
            "decided never changes"
        );
        sb.observe_proposal(h(0));
        assert_eq!(sb.preference(), Some(h(1)));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn zero_alpha_rejected() {
        let _ = Snowball::new(0, 1);
    }
}
