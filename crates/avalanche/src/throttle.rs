//! The inbound message throttler.
//!
//! AvalancheGo guards every node with an `InboundMsgThrottler` stack:
//! a CPU-quota throttler (`cpuThrottler`) defers message processing when
//! the tracked CPU usage exceeds its target, and a buffer throttler
//! (`bufferThrottler`) drops messages outright once too many are waiting
//! unprocessed. Stabl shows this machinery is double-edged: it protects
//! steady state but, once a backlog builds after a transient failure,
//! deferred chits make polls fail, failed polls keep the backlog alive,
//! and the network enters a metastable congestion it never leaves
//! (paper §5: "messages were successfully sent and received … but the
//! throttling prevented them from being processed in a timely manner").

use stabl_sim::{CpuMeter, SimDuration, SimTime};

/// Verdict of the throttler for an arriving message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Process now (CPU charged).
    Process,
    /// CPU quota exceeded: park the message in the unprocessed buffer.
    Defer,
    /// Buffer full as well: drop the message.
    Drop,
}

/// CPU-quota + buffer admission control for inbound messages.
#[derive(Clone, Debug)]
pub struct InboundThrottler {
    cpu: CpuMeter,
    quota: f64,
    max_buffered: usize,
    buffered: usize,
    deferred_total: u64,
    dropped_total: u64,
}

impl InboundThrottler {
    /// Creates a throttler with a decaying CPU meter (`half_life`),
    /// a usage `quota` and an unprocessed-message cap.
    ///
    /// # Panics
    ///
    /// Panics if `quota` is not positive or `max_buffered` is zero.
    pub fn new(half_life: SimDuration, quota: f64, max_buffered: usize) -> Self {
        assert!(quota > 0.0, "quota must be positive");
        assert!(max_buffered > 0, "buffer must hold at least one message");
        InboundThrottler {
            cpu: CpuMeter::new(half_life),
            quota,
            max_buffered,
            buffered: 0,
            deferred_total: 0,
            dropped_total: 0,
        }
    }

    /// Rules on an arriving message with processing cost `cost`
    /// (core-seconds). `Process` charges the meter; `Defer` reserves a
    /// buffer slot the caller must later release through
    /// [`InboundThrottler::drain_one`].
    pub fn admit(&mut self, now: SimTime, cost: f64) -> Admission {
        if self.cpu.usage(now) <= self.quota {
            self.cpu.charge(now, cost);
            Admission::Process
        } else if self.buffered < self.max_buffered {
            self.buffered += 1;
            self.deferred_total += 1;
            Admission::Defer
        } else {
            self.dropped_total += 1;
            Admission::Drop
        }
    }

    /// Attempts to process one parked message of cost `cost`; `true`
    /// (and the meter charged, the slot released) if the quota allows.
    pub fn drain_one(&mut self, now: SimTime, cost: f64) -> bool {
        debug_assert!(self.buffered > 0, "nothing to drain");
        if self.cpu.usage(now) <= self.quota {
            self.cpu.charge(now, cost);
            self.buffered = self.buffered.saturating_sub(1);
            true
        } else {
            false
        }
    }

    /// Charges locally generated work (block building, execution) that
    /// competes with message processing for the same cores.
    pub fn charge_local(&mut self, now: SimTime, cost: f64) {
        self.cpu.charge(now, cost);
    }

    /// The tracked CPU usage at `now`.
    pub fn usage(&mut self, now: SimTime) -> f64 {
        self.cpu.usage(now)
    }

    /// Read-only view of the tracked usage (diagnostics).
    pub fn usage_peek(&self, now: SimTime) -> f64 {
        self.cpu.usage_peek(now)
    }

    /// Messages parked right now.
    pub fn buffered(&self) -> usize {
        self.buffered
    }

    /// Messages ever deferred.
    pub fn deferred_total(&self) -> u64 {
        self.deferred_total
    }

    /// Messages ever dropped by the buffer throttler.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_total
    }

    /// Resets meter and buffer accounting (node restart).
    pub fn reset(&mut self, now: SimTime) {
        self.cpu.reset(now);
        self.buffered = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn throttler() -> InboundThrottler {
        InboundThrottler::new(SimDuration::from_secs(1), 1.0, 3)
    }

    #[test]
    fn processes_under_quota() {
        let mut th = throttler();
        assert_eq!(th.admit(t(0), 0.4), Admission::Process);
        assert_eq!(th.admit(t(0), 0.4), Admission::Process);
        assert!(th.usage(t(0)) > 0.7);
    }

    #[test]
    fn defers_over_quota_then_drops() {
        let mut th = throttler();
        assert_eq!(
            th.admit(t(0), 1.2),
            Admission::Process,
            "first one slips in"
        );
        assert_eq!(th.admit(t(0), 0.1), Admission::Defer);
        assert_eq!(th.admit(t(0), 0.1), Admission::Defer);
        assert_eq!(th.admit(t(0), 0.1), Admission::Defer);
        assert_eq!(th.admit(t(0), 0.1), Admission::Drop, "buffer of 3 is full");
        assert_eq!(th.buffered(), 3);
        assert_eq!(th.dropped_total(), 1);
    }

    #[test]
    fn decay_reopens_the_quota() {
        let mut th = throttler();
        th.admit(t(0), 2.0);
        assert_eq!(th.admit(t(0), 0.1), Admission::Defer);
        // Two half-lives later usage fell to 0.5: drain succeeds.
        assert!(th.drain_one(t(2000), 0.1));
        assert_eq!(th.buffered(), 0);
    }

    #[test]
    fn drain_respects_quota() {
        let mut th = throttler();
        th.admit(t(0), 5.0);
        th.admit(t(0), 0.1);
        assert!(!th.drain_one(t(100), 0.1), "still saturated");
        assert_eq!(th.buffered(), 1);
    }

    #[test]
    fn local_work_competes() {
        let mut th = throttler();
        th.charge_local(t(0), 2.0);
        assert_eq!(th.admit(t(0), 0.1), Admission::Defer);
    }

    #[test]
    fn reset_clears_state() {
        let mut th = throttler();
        th.admit(t(0), 5.0);
        th.admit(t(0), 0.1);
        th.reset(t(10));
        assert_eq!(th.buffered(), 0);
        assert_eq!(th.admit(t(10), 0.1), Admission::Process);
    }
}
