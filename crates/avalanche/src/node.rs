//! The simulated Avalanche validator: Snowball polling over block
//! proposals, randomised transaction gossip and the inbound throttler.

use std::collections::{BTreeMap, VecDeque};

use stabl_sim::{ContentionStats, Ctx, NodeId, Protocol, SimTime};
use stabl_types::{AccountPool, Block, Hash32, Ledger, Transaction, TxId};

use crate::throttle::Admission;
use crate::{AvalancheConfig, InboundThrottler, Snowball};

/// Wire messages of the simulated Avalanche network.
#[derive(Clone, Debug)]
pub enum AvalancheMsg {
    /// First-hop / epidemic announcement of fresh transactions.
    AnnounceTxs {
        /// The announced transactions.
        txs: Vec<Transaction>,
    },
    /// Periodic re-gossip of stale pending transactions (drawn in
    /// effectively random order, like coreth's `legacypool`).
    RegossipTxs {
        /// The re-gossiped transactions.
        txs: Vec<Transaction>,
    },
    /// A validator's block proposal for a height.
    Proposal {
        /// The height the block is proposed for.
        height: u64,
        /// The proposed block.
        block: Block,
    },
    /// Snowball poll: "what block do you prefer at `height`?".
    Query {
        /// Poll identifier (local to the querier).
        id: u64,
        /// The polled height.
        height: u64,
    },
    /// Snowball poll response.
    Chit {
        /// The poll this answers.
        id: u64,
        /// The responder's preference, if it has one.
        preference: Option<Hash32>,
    },
    /// Gossip that a height was decided.
    Accepted {
        /// The decided height.
        height: u64,
        /// Hash of the accepted block.
        hash: Hash32,
    },
    /// Request for committed blocks starting at a height (bootstrap).
    BlockRequest {
        /// First height requested.
        height: u64,
    },
    /// One committed block.
    BlockResponse {
        /// The block's height.
        height: u64,
        /// The committed block.
        block: Block,
    },
}

/// Timer tokens of the Avalanche node.
#[derive(Clone, Debug)]
pub enum AvalancheTimer {
    /// Block production cadence.
    BlockTick,
    /// Snowball poll cadence.
    QueryTick,
    /// Announce batching cadence.
    AnnounceTick,
    /// Stale re-gossip cadence.
    RegossipTick,
    /// Parked-message drain attempt.
    Drain,
    /// A poll's chit collection deadline.
    QueryDeadline {
        /// The poll to finalise.
        id: u64,
    },
}

#[derive(Debug)]
struct Poll {
    height: u64,
    values: Vec<Hash32>,
    received: usize,
    expected: usize,
}

/// A simulated Avalanche validator node.
#[derive(Debug)]
pub struct AvalancheNode {
    id: NodeId,
    n: usize,
    config: AvalancheConfig,
    k_eff: usize,
    alpha_eff: usize,
    // Chain state.
    chain: Vec<Block>,
    ledger: Ledger,
    // Current-height consensus.
    proposals: BTreeMap<Hash32, Block>,
    snowball: Snowball,
    proposed: Option<Hash32>,
    pending_decided: Option<Hash32>,
    // Transaction gossip.
    pool: AccountPool,
    pending: BTreeMap<TxId, (Transaction, SimTime)>,
    announce_queue: Vec<Transaction>,
    // Throttling.
    throttler: InboundThrottler,
    parked: VecDeque<(NodeId, AvalancheMsg)>,
    drain_armed: bool,
    // Polling.
    outstanding: BTreeMap<u64, Poll>,
    next_poll: u64,
}

impl AvalancheNode {
    /// The committed chain height.
    pub fn chain_height(&self) -> u64 {
        self.chain.len() as u64
    }

    /// The height currently under Snowball agreement.
    pub fn current_height(&self) -> u64 {
        self.chain_height() + 1
    }

    /// Pending pool transactions.
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// The node's ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Messages parked by the CPU throttler right now.
    pub fn throttled_backlog(&self) -> usize {
        self.parked.len()
    }

    /// Read-only view of the tracked CPU usage (diagnostics).
    pub fn cpu_usage_peek(&self, now: SimTime) -> f64 {
        self.throttler.usage_peek(now)
    }

    /// Messages dropped by the buffer throttler so far.
    pub fn throttled_drops(&self) -> u64 {
        self.throttler.dropped_total()
    }

    /// Messages deferred by the CPU throttler so far.
    pub fn throttled_defers(&self) -> u64 {
        self.throttler.deferred_total()
    }

    /// Failed Snowball polls so far (current height instance only).
    pub fn failed_polls(&self) -> u64 {
        self.snowball.failed_polls()
    }

    fn cost_of(&self, msg: &AvalancheMsg) -> f64 {
        match msg {
            AvalancheMsg::AnnounceTxs { txs } | AvalancheMsg::RegossipTxs { txs } => {
                self.config.cost_per_tx * txs.len() as f64
            }
            AvalancheMsg::Proposal { block, .. } => {
                self.config.cost_proposal_base
                    + self.config.cost_proposal_per_tx * block.len() as f64
            }
            AvalancheMsg::Query { .. }
            | AvalancheMsg::Chit { .. }
            | AvalancheMsg::Accepted { .. } => self.config.cost_query,
            AvalancheMsg::BlockRequest { .. } => self.config.cost_proposal_base,
            AvalancheMsg::BlockResponse { block, .. } => {
                self.config.cost_proposal_base
                    + self.config.cost_proposal_per_tx * block.len() as f64
            }
        }
    }

    fn sample_peers(&self, ctx: &mut Ctx<'_, Self>, count: usize) -> Vec<NodeId> {
        let me = self.id.index();
        let peers: Vec<NodeId> = NodeId::all(self.n).filter(|p| p.index() != me).collect();
        let count = count.min(peers.len());
        ctx.rng()
            .sample_indices(peers.len(), count)
            .into_iter()
            .map(|i| peers[i])
            .collect()
    }

    fn insert_pending(&mut self, tx: Transaction, now: SimTime, announce: bool) {
        if self.pool.insert(tx) {
            self.pending.insert(tx.id(), (tx, now));
            if announce {
                self.announce_queue.push(tx);
            }
        }
    }

    fn dispatch(&mut self, from: NodeId, msg: AvalancheMsg, ctx: &mut Ctx<'_, Self>) {
        match msg {
            AvalancheMsg::AnnounceTxs { txs } => {
                for tx in txs {
                    // Epidemic gossip: newly learned transactions are
                    // announced onwards.
                    self.insert_pending(tx, ctx.now(), true);
                }
            }
            AvalancheMsg::RegossipTxs { txs } => {
                for tx in txs {
                    self.insert_pending(tx, ctx.now(), false);
                }
            }
            AvalancheMsg::Proposal { height, block } => {
                if height == self.current_height() {
                    let hash = block.hash();
                    self.proposals.insert(hash, block);
                    self.snowball.observe_proposal(hash);
                    if self.pending_decided == Some(hash) {
                        self.try_commit(hash, ctx);
                    }
                } else if height > self.current_height() {
                    ctx.send(
                        from,
                        AvalancheMsg::BlockRequest {
                            height: self.current_height(),
                        },
                    );
                }
            }
            AvalancheMsg::Query { id, height } => {
                let preference = if height <= self.chain_height() {
                    Some(self.chain[(height - 1) as usize].hash())
                } else if height == self.current_height() {
                    self.snowball.preference()
                } else {
                    None
                };
                ctx.send(from, AvalancheMsg::Chit { id, preference });
            }
            AvalancheMsg::Chit { id, preference } => {
                let finalise = match self.outstanding.get_mut(&id) {
                    Some(poll) => {
                        poll.received += 1;
                        if let Some(p) = preference {
                            poll.values.push(p);
                        }
                        poll.received >= poll.expected
                    }
                    None => false,
                };
                if finalise {
                    self.finalise_poll(id, ctx);
                }
            }
            AvalancheMsg::Accepted { height, hash } => {
                if height == self.current_height() {
                    if self.proposals.contains_key(&hash) {
                        self.try_commit(hash, ctx);
                    } else {
                        self.pending_decided = Some(hash);
                        ctx.send(from, AvalancheMsg::BlockRequest { height });
                    }
                }
            }
            AvalancheMsg::BlockRequest { height } => {
                if height >= 1 {
                    let start = (height - 1) as usize;
                    let end = (start + 8).min(self.chain.len());
                    for i in start..end {
                        let block = self.chain[i].clone();
                        ctx.send(
                            from,
                            AvalancheMsg::BlockResponse {
                                height: i as u64 + 1,
                                block,
                            },
                        );
                    }
                }
            }
            AvalancheMsg::BlockResponse { height, block } => {
                if height == self.current_height() {
                    // The block is committed at the responder: adopt it.
                    let hash = block.hash();
                    self.proposals.insert(hash, block);
                    self.try_commit(hash, ctx);
                }
            }
        }
    }

    fn finalise_poll(&mut self, id: u64, ctx: &mut Ctx<'_, Self>) {
        let Some(poll) = self.outstanding.remove(&id) else {
            return;
        };
        if poll.height != self.current_height() {
            return;
        }
        if let Some(decided) = self.snowball.record_poll(&poll.values) {
            if self.proposals.contains_key(&decided) {
                self.try_commit(decided, ctx);
            } else {
                self.pending_decided = Some(decided);
                let peers = self.sample_peers(ctx, 2);
                let height = self.current_height();
                for peer in peers {
                    ctx.send(peer, AvalancheMsg::BlockRequest { height });
                }
            }
        }
    }

    fn try_commit(&mut self, hash: Hash32, ctx: &mut Ctx<'_, Self>) {
        let Some(block) = self.proposals.get(&hash).cloned() else {
            return;
        };
        let height = self.current_height();
        // Execution competes with message handling for CPU.
        self.throttler
            .charge_local(ctx.now(), self.config.cost_exec_per_tx * block.len() as f64);
        for tx in block.txs() {
            if let Ok(id) = self.ledger.apply(tx) {
                ctx.commit(id);
            }
            self.pool.mark_committed(tx.from(), tx.nonce() + 1);
            self.pending.remove(&tx.id());
        }
        self.chain.push(block);
        self.proposals.clear();
        self.snowball = Snowball::new(self.alpha_eff, self.config.beta);
        self.proposed = None;
        self.pending_decided = None;
        ctx.broadcast(AvalancheMsg::Accepted { height, hash });
    }

    fn handle_block_tick(&mut self, ctx: &mut Ctx<'_, Self>) {
        ctx.set_timer(self.config.block_interval, AvalancheTimer::BlockTick);
        if self.snowball.decision().is_some() {
            return;
        }
        match self.proposed {
            None => {
                let txs = self.pool.take_ready(self.config.max_block_txs);
                if txs.is_empty() {
                    return;
                }
                let parent = self.chain.last().map(Block::hash).unwrap_or(Hash32::ZERO);
                let height = self.current_height();
                let block = Block::new(parent, height, self.id, txs);
                let hash = block.hash();
                ctx.span("propose");
                ctx.gauge("height", height);
                ctx.gauge("mempool_depth", self.pool.len() as u64);
                ctx.gauge("pending_txs", self.pending.len() as u64);
                self.throttler.charge_local(
                    ctx.now(),
                    self.config.cost_proposal_base
                        + self.config.cost_proposal_per_tx * block.len() as f64,
                );
                self.proposals.insert(hash, block.clone());
                self.snowball.observe_proposal(hash);
                self.proposed = Some(hash);
                ctx.broadcast(AvalancheMsg::Proposal { height, block });
            }
            Some(hash) => {
                // Re-gossip our unaccepted proposal (container re-gossip)
                // so late or recovering peers can still converge.
                if let Some(block) = self.proposals.get(&hash).cloned() {
                    let height = self.current_height();
                    ctx.broadcast(AvalancheMsg::Proposal { height, block });
                }
            }
        }
    }

    fn handle_query_tick(&mut self, ctx: &mut Ctx<'_, Self>) {
        ctx.set_timer(self.config.query_interval, AvalancheTimer::QueryTick);
        if self.snowball.decision().is_some() || self.proposals.is_empty() {
            return;
        }
        // Polls are sequential (the AvalancheGo poll loop): a poll that
        // sampled an unresponsive node holds the β streak hostage for
        // the full query timeout — the §4 instability under crashes.
        let current = self.current_height();
        if self.outstanding.values().any(|p| p.height == current) {
            return;
        }
        ctx.span("snowball-poll");
        ctx.gauge("outstanding_polls", self.outstanding.len() as u64 + 1);
        let id = self.next_poll;
        self.next_poll += 1;
        let peers = self.sample_peers(ctx, self.k_eff);
        let height = self.current_height();
        self.outstanding.insert(
            id,
            Poll {
                height,
                values: Vec::new(),
                received: 0,
                expected: peers.len(),
            },
        );
        for peer in peers {
            ctx.send(peer, AvalancheMsg::Query { id, height });
        }
        ctx.set_timer(
            self.config.query_timeout,
            AvalancheTimer::QueryDeadline { id },
        );
    }

    fn handle_announce_tick(&mut self, ctx: &mut Ctx<'_, Self>) {
        ctx.set_timer(self.config.announce_interval, AvalancheTimer::AnnounceTick);
        if self.announce_queue.is_empty() {
            return;
        }
        let txs = std::mem::take(&mut self.announce_queue);
        let peers = self.sample_peers(ctx, self.config.gossip_fanout);
        for peer in peers {
            ctx.send(peer, AvalancheMsg::AnnounceTxs { txs: txs.clone() });
        }
    }

    fn handle_regossip_tick(&mut self, ctx: &mut Ctx<'_, Self>) {
        ctx.set_timer(self.config.regossip_interval, AvalancheTimer::RegossipTick);
        let now = ctx.now();
        // Stale pending transactions, drawn in effectively random order
        // (the unordered-map iteration the paper pins nonce delays on).
        let mut stale_ids: Vec<TxId> = self
            .pending
            .iter()
            .filter(|(_, (_, since))| now.saturating_since(*since) > self.config.stale_age)
            .map(|(id, _)| *id)
            .collect();
        if stale_ids.is_empty() {
            return;
        }
        stale_ids.sort_unstable();
        ctx.rng().shuffle(&mut stale_ids);
        stale_ids.truncate(self.config.regossip_batch);
        let txs: Vec<Transaction> = stale_ids.iter().map(|id| self.pending[id].0).collect();
        let peers = self.sample_peers(ctx, self.config.gossip_fanout);
        for peer in peers {
            ctx.send(peer, AvalancheMsg::RegossipTxs { txs: txs.clone() });
        }
    }

    fn handle_drain(&mut self, ctx: &mut Ctx<'_, Self>) {
        loop {
            let Some((_, msg)) = self.parked.front() else {
                self.drain_armed = false;
                return;
            };
            let cost = self.cost_of(msg);
            if self.throttler.drain_one(ctx.now(), cost) {
                let (from, msg) = self.parked.pop_front().expect("front exists");
                self.dispatch(from, msg, ctx);
            } else {
                break;
            }
        }
        ctx.set_timer(self.config.drain_interval, AvalancheTimer::Drain);
    }
}

impl Protocol for AvalancheNode {
    type Msg = AvalancheMsg;
    type Request = Transaction;
    type Commit = TxId;
    type Timer = AvalancheTimer;
    type Config = AvalancheConfig;

    fn new(id: NodeId, n: usize, config: &AvalancheConfig, ctx: &mut Ctx<'_, Self>) -> Self {
        let (k_eff, alpha_eff) = config.effective_sampling(n);
        let node = AvalancheNode {
            id,
            n,
            config: config.clone(),
            k_eff,
            alpha_eff,
            chain: Vec::new(),
            ledger: if config.model_contention {
                Ledger::with_lazy_balance(u64::MAX / 512)
            } else {
                Ledger::with_uniform_balance(256, u64::MAX / 512)
            },
            proposals: BTreeMap::new(),
            snowball: Snowball::new(alpha_eff, config.beta),
            proposed: None,
            pending_decided: None,
            pool: AccountPool::new(config.pool_capacity),
            pending: BTreeMap::new(),
            announce_queue: Vec::new(),
            throttler: InboundThrottler::new(
                config.cpu_half_life,
                config.cpu_quota,
                config.max_unprocessed,
            ),
            parked: VecDeque::new(),
            drain_armed: false,
            outstanding: BTreeMap::new(),
            next_poll: 0,
        };
        ctx.set_timer(node.config.block_interval, AvalancheTimer::BlockTick);
        ctx.set_timer(node.config.query_interval, AvalancheTimer::QueryTick);
        ctx.set_timer(node.config.announce_interval, AvalancheTimer::AnnounceTick);
        ctx.set_timer(node.config.regossip_interval, AvalancheTimer::RegossipTick);
        node
    }

    fn on_message(&mut self, from: NodeId, msg: AvalancheMsg, ctx: &mut Ctx<'_, Self>) {
        let cost = self.cost_of(&msg);
        match self.throttler.admit(ctx.now(), cost) {
            Admission::Process => self.dispatch(from, msg, ctx),
            Admission::Defer => {
                self.parked.push_back((from, msg));
                if !self.drain_armed {
                    self.drain_armed = true;
                    ctx.set_timer(self.config.drain_interval, AvalancheTimer::Drain);
                }
            }
            Admission::Drop => {}
        }
    }

    fn on_timer(&mut self, timer: AvalancheTimer, ctx: &mut Ctx<'_, Self>) {
        match timer {
            AvalancheTimer::BlockTick => self.handle_block_tick(ctx),
            AvalancheTimer::QueryTick => self.handle_query_tick(ctx),
            AvalancheTimer::AnnounceTick => self.handle_announce_tick(ctx),
            AvalancheTimer::RegossipTick => self.handle_regossip_tick(ctx),
            AvalancheTimer::Drain => self.handle_drain(ctx),
            AvalancheTimer::QueryDeadline { id } => self.finalise_poll(id, ctx),
        }
    }

    fn on_request(&mut self, tx: Transaction, ctx: &mut Ctx<'_, Self>) {
        self.insert_pending(tx, ctx.now(), true);
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.pool.clear_pending();
        self.pending.clear();
        self.announce_queue.clear();
        self.proposals.clear();
        self.snowball = Snowball::new(self.alpha_eff, self.config.beta);
        self.proposed = None;
        self.pending_decided = None;
        self.outstanding.clear();
        self.parked.clear();
        self.drain_armed = false;
        self.throttler.reset(ctx.now());
        ctx.set_timer(self.config.block_interval, AvalancheTimer::BlockTick);
        ctx.set_timer(self.config.query_interval, AvalancheTimer::QueryTick);
        ctx.set_timer(self.config.announce_interval, AvalancheTimer::AnnounceTick);
        ctx.set_timer(self.config.regossip_interval, AvalancheTimer::RegossipTick);
        // Bootstrap: fetch whatever the network committed while we were
        // away.
        let height = self.current_height();
        let peers = self.sample_peers(ctx, 3);
        for peer in peers {
            ctx.send(peer, AvalancheMsg::BlockRequest { height });
        }
    }

    fn contention_stats(&self) -> ContentionStats {
        ContentionStats {
            pool_evictions: self.pool.rejected_full(),
            pool_replacements: self.pool.rejected_conflict(),
            ..ContentionStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabl_sim::{PartitionRule, SimDuration, Simulation};
    use stabl_types::AccountId;
    use std::collections::HashSet;

    fn sim(n: usize, seed: u64) -> Simulation<AvalancheNode> {
        Simulation::new(n, seed, AvalancheConfig::default())
    }

    fn submit_stream(
        sim: &mut Simulation<AvalancheNode>,
        accounts: u32,
        tps: u64,
        from: u64,
        to: u64,
    ) {
        let targets = (sim.n() as u64 / 2).max(1);
        let period_us = 1_000_000 / tps;
        let mut nonces = vec![0u64; accounts as usize];
        let mut at = SimTime::from_secs(from);
        let mut k = 0u64;
        while at < SimTime::from_secs(to) {
            let acct = (k % accounts as u64) as u32;
            let tx = Transaction::transfer(
                AccountId::new(acct),
                nonces[acct as usize],
                AccountId::new(200 + acct),
                1,
            );
            nonces[acct as usize] += 1;
            sim.schedule_request(at, NodeId::new((k % targets) as u32), tx);
            at += SimDuration::from_micros(period_us);
            k += 1;
        }
    }

    fn unique_commits_at(sim: &Simulation<AvalancheNode>, node: u32) -> usize {
        sim.commits()
            .iter()
            .filter(|c| c.node == NodeId::new(node))
            .map(|c| c.commit)
            .collect::<HashSet<TxId>>()
            .len()
    }

    #[test]
    fn commits_offered_load_in_baseline() {
        let mut s = sim(10, 1);
        submit_stream(&mut s, 10, 100, 1, 11);
        s.run_until(SimTime::from_secs(30));
        assert_eq!(unique_commits_at(&s, 0), 1000);
        assert!(s.node(NodeId::new(0)).pool_len() < 100, "pool drains");
    }

    #[test]
    fn baseline_latency_is_seconds_scale() {
        let mut s = sim(10, 2);
        submit_stream(&mut s, 10, 100, 1, 31);
        s.run_until(SimTime::from_secs(45));
        // Committed within the run and no throttling collapse.
        assert_eq!(unique_commits_at(&s, 0), 3000);
        assert_eq!(
            s.node(NodeId::new(0)).throttled_drops(),
            0,
            "no buffer drops at baseline"
        );
    }

    #[test]
    fn one_crash_destabilises_but_does_not_kill() {
        let mut s = sim(10, 3);
        submit_stream(&mut s, 10, 100, 1, 60);
        s.schedule_crash(SimTime::from_secs(10), NodeId::new(9)); // f = t = 1
        s.run_until(SimTime::from_secs(90));
        assert_eq!(
            unique_commits_at(&s, 0),
            5900,
            "all load commits with f = t"
        );
        // Polls that sampled the dead node failed: visible instability.
        let failed: u64 = (0..9u32)
            .map(|i| s.node(NodeId::new(i)).failed_polls())
            .sum();
        let _ = failed; // per-height instance resets; drops are the stable signal
    }

    #[test]
    fn transient_outage_collapses_into_throttling() {
        let mut s = sim(10, 4);
        submit_stream(&mut s, 10, 200, 1, 200);
        for i in 5..7u32 {
            s.schedule_crash(SimTime::from_secs(40), NodeId::new(i)); // f = t + 1 = 2
            s.schedule_restart(SimTime::from_secs(100), NodeId::new(i));
        }
        s.run_until(SimTime::from_secs(200));
        let before: HashSet<TxId> = s
            .commits()
            .iter()
            .filter(|c| c.node == NodeId::new(0) && c.time < SimTime::from_secs(40))
            .map(|c| c.commit)
            .collect();
        let total = unique_commits_at(&s, 0);
        // The backlog grows stale, re-gossip storms saturate the CPU
        // throttler, chits are deferred past their deadlines and no new
        // block is ever agreed on: sensitivity is infinite.
        let after_recovery: HashSet<TxId> = s
            .commits()
            .iter()
            .filter(|c| c.node == NodeId::new(0) && c.time > SimTime::from_secs(110))
            .map(|c| c.commit)
            .collect();
        assert!(
            after_recovery.len() < 1000,
            "throttling collapse should prevent recovery, yet {} committed",
            after_recovery.len()
        );
        assert!(
            total < 32_000,
            "nowhere near the offered load: {total} vs {}",
            before.len()
        );
        let defers: u64 = (0..10u32)
            .map(|i| s.node(NodeId::new(i)).throttled_defers())
            .sum();
        assert!(defers > 1_000, "expected heavy deferral, got {defers}");
    }

    #[test]
    fn deterministic_runs() {
        let run = |seed| {
            let mut s = sim(4, seed);
            submit_stream(&mut s, 4, 50, 1, 5);
            s.run_until(SimTime::from_secs(15));
            s.commits()
                .iter()
                .map(|c| (c.time.as_micros(), c.node.as_u32()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn partition_prevents_consensus_on_both_sides() {
        let mut s = sim(10, 5);
        submit_stream(&mut s, 10, 100, 1, 60);
        let isolated: Vec<NodeId> = (5..7u32).map(NodeId::new).collect();
        s.schedule_partition(
            SimTime::from_secs(20),
            SimTime::from_secs(50),
            PartitionRule::isolate(isolated, 10),
        );
        s.run_until(SimTime::from_secs(60));
        // With 2 of 10 unreachable, α = 4 of k = 5 samples fails too
        // often for β consecutive successes: few or no commits during
        // the partition window.
        let during = s
            .commits()
            .iter()
            .filter(|c| {
                c.node == NodeId::new(0)
                    && c.time > SimTime::from_secs(26)
                    && c.time < SimTime::from_secs(50)
            })
            .count();
        let before = s
            .commits()
            .iter()
            .filter(|c| c.node == NodeId::new(0) && c.time < SimTime::from_secs(20))
            .count();
        assert!(before > 1000, "baseline part must flow: {before}");
        assert!(
            (during as f64) < before as f64 * 0.4,
            "consensus should mostly stall during the partition: {during} vs {before}"
        );
    }

    #[test]
    fn replicas_converge_in_baseline() {
        let mut s = sim(10, 6);
        submit_stream(&mut s, 10, 100, 1, 20);
        s.run_until(SimTime::from_secs(40));
        let executed: HashSet<u64> = (0..10u32)
            .map(|i| s.node(NodeId::new(i)).ledger().executed())
            .collect();
        assert_eq!(executed.len(), 1, "diverged: {executed:?}");
    }
}
