//! # stabl-avalanche — a simulated Avalanche validator
//!
//! Models the Avalanche C-Chain (AvalancheGo v1.10.18 / coreth in the
//! paper) for the Stabl fault-tolerance study:
//!
//! * **Snowball consensus** ([`Snowball`]) — repeated randomised polling
//!   with parameters `k`, `α > k/2`, `β`; crashed nodes remain in the
//!   sampling population, so polls fail and confidence resets, producing
//!   the throughput instability of §4 and a hard liveness dependency on
//!   ≥ 80 % of stake being reachable.
//! * **Inbound message throttling** ([`InboundThrottler`]) — the
//!   CPU-quota and buffer throttlers of AvalancheGo. After a transient
//!   outage, stale-transaction re-gossip storms saturate the quota,
//!   chits are deferred past their poll deadlines, no block is agreed,
//!   the backlog stays — a metastable congestion the network never
//!   leaves (§5, §6: infinite sensitivity).
//! * **Randomised nonce-blind gossip** — pending transactions re-gossip
//!   in effectively random order (coreth's `legacypool` unordered-map
//!   iteration), delaying low-nonce transactions; the secure client's
//!   redundant submissions bypass this and *improve* latency (§7).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod node;
mod snowball;
mod throttle;

pub use config::AvalancheConfig;
pub use node::{AvalancheMsg, AvalancheNode, AvalancheTimer};
pub use snowball::Snowball;
pub use throttle::{Admission, InboundThrottler};

/// [`AvalancheNode`] wrapped with message-level Byzantine behaviors
/// (mutate, equivocate, delay, withhold) for selected nodes; configure
/// via [`AvalancheConfig::with_byzantine`].
pub type ByzantineAvalancheNode = stabl_sim::ByzantineWrapper<AvalancheNode>;
