//! Configuration of the simulated Aptos validator.

use stabl_sim::{ConnConfig, SimDuration};

/// Tunables of the DiemBFT consensus, Block-STM executor and networking
/// of a simulated Aptos validator.
///
/// Defaults model Aptos v1.9.3 on the paper's 4-vCPU VMs at the scale of
/// the Stabl testbed (10 validators, 200 TPS offered load).
#[derive(Clone, Debug)]
pub struct AptosConfig {
    /// Maximum transactions per proposed block.
    pub max_block_txs: usize,
    /// Mempool capacity (transactions).
    pub mempool_capacity: usize,
    /// Delay between entering a round as leader and proposing (batching
    /// window; paces block production).
    pub propose_delay: SimDuration,
    /// Base round timeout of the pacemaker.
    pub round_timeout: SimDuration,
    /// Pacemaker timeout multiplier per consecutive failed round
    /// (per-mille: `1500` grows by half).
    pub timeout_factor_permille: u32,
    /// Pacemaker timeout ceiling.
    pub timeout_cap: SimDuration,
    /// Consecutive proposal failures after which a leader is excluded
    /// from rotation (leader reputation).
    pub reputation_strikes: u32,
    /// How long an excluded leader stays out of the rotation.
    pub reputation_window: SimDuration,
    /// Block-STM execution cost per transaction in a committed block.
    pub exec_per_tx: SimDuration,
    /// Fixed execution cost per committed block.
    pub exec_per_block: SimDuration,
    /// Cost of validating + *speculatively executing* one transaction on
    /// its submission / shared-mempool ingestion path. Comparable to the
    /// execution cost itself — this is the CPU the paper saw the secure
    /// client's redundant submissions multiply (§3, §7).
    pub validation_cost: SimDuration,
    /// Extra executor cost when a submission or block entry turns out to
    /// be already committed (`SEQUENCE_NUMBER_TOO_OLD` re-execution).
    pub stale_exec_cost: SimDuration,
    /// Connection management (probes every 5 s, 2 s-base exponential
    /// backoff capped at 30 s — the paper's §6 parameters).
    pub conn: ConnConfig,
    /// Connection-manager tick period.
    pub conn_tick: SimDuration,
    /// Models production-shaped contention: funds the whole declared
    /// account population lazily (instead of the paper's 256 prefunded
    /// accounts) and enables the Block-STM within-block conflict model.
    /// Off by default so the paper-standard runs are byte-identical.
    pub model_contention: bool,
}

impl Default for AptosConfig {
    fn default() -> Self {
        AptosConfig {
            max_block_txs: 300,
            mempool_capacity: 200_000,
            propose_delay: SimDuration::from_millis(250),
            round_timeout: SimDuration::from_millis(1_500),
            timeout_factor_permille: 1_500,
            timeout_cap: SimDuration::from_secs(8),
            reputation_strikes: 4,
            reputation_window: SimDuration::from_secs(600),
            exec_per_tx: SimDuration::from_micros(2_500),
            exec_per_block: SimDuration::from_millis(10),
            validation_cost: SimDuration::from_micros(1_800),
            stale_exec_cost: SimDuration::from_millis(4),
            conn: ConnConfig::fast_recovery(),
            conn_tick: SimDuration::from_millis(1_000),
            model_contention: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_consistent() {
        let cfg = AptosConfig::default();
        assert!(cfg.round_timeout < cfg.timeout_cap);
        assert!(
            cfg.propose_delay < cfg.round_timeout,
            "leaders propose before timing out"
        );
        assert!(cfg.max_block_txs > 0 && cfg.mempool_capacity > cfg.max_block_txs);
        // Executor keeps up with the paper's 200 TPS baseline.
        let per_second_cost = cfg.exec_per_tx.as_micros() * 200;
        assert!(
            per_second_cost < 1_000_000,
            "executor saturated at baseline load"
        );
    }
}

impl AptosConfig {
    /// Pairs this config with a Byzantine spec, producing the config of
    /// [`ByzantineAptosNode`](crate::ByzantineAptosNode): the named
    /// nodes run the same protocol but mutate, equivocate, delay or
    /// withhold their outbound messages.
    pub fn with_byzantine(
        self,
        spec: stabl_sim::ByzantineSpec,
    ) -> stabl_sim::ByzConfig<AptosConfig> {
        stabl_sim::ByzConfig::new(self, spec)
    }
}
