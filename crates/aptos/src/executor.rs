//! A timing model of the Block-STM parallel executor.
//!
//! Block-STM (Gelashvili et al., PPoPP '23) executes the transactions of a
//! committed block speculatively in parallel and re-executes on conflict.
//! For the Stabl study only its *timing* matters: execution is a shared
//! per-node resource consumed by (i) committed blocks, (ii) the
//! validation + speculative dispatch of every client submission, and
//! (iii) `SEQUENCE_NUMBER_TOO_OLD` re-executions of transactions that
//! were already committed — the overhead the paper traces the secure
//! client's Aptos degradation to (§7).
//!
//! The executor is modelled as a single busy-until timeline: work items
//! are serialised, each block completes at `max(now, busy_until) + cost`,
//! and the owning node arms a timer for that instant to deliver commit
//! notifications.

use std::collections::BTreeMap;

use stabl_sim::{CpuMeter, SimDuration, SimTime};
use stabl_types::{AccountId, Block};

/// Half-life of the ancillary-load estimator.
const ANCILLARY_HALF_LIFE: SimDuration = SimDuration::from_secs(2);
/// Highest share of the executor ancillary work may claim: block
/// execution is stretched by at most `1 / (1 - CAP)`.
const CONTENTION_CAP: f64 = 0.75;

/// A committed block waiting for (or undergoing) execution.
#[derive(Clone, Debug)]
struct PendingExec {
    block: Block,
    /// When execution of this block finishes.
    done_at: SimTime,
}

/// The Block-STM timing model: a serialised block-execution timeline
/// sharing the node's cores with *ancillary* speculative work.
///
/// Ancillary work (request validation, shared-mempool ingestion,
/// `SEQUENCE_NUMBER_TOO_OLD` re-executions) does not queue ahead of
/// blocks; it *stretches* them, processor-sharing style: a block's
/// execution takes `base / (1 − r)` where `r` is the recent ancillary
/// core utilisation (capped). This matches how Block-STM's worker
/// threads compete with the validation pipeline for the same vCPUs.
#[derive(Clone, Debug)]
pub struct BlockStmExecutor {
    per_tx: SimDuration,
    per_block: SimDuration,
    busy_until: SimTime,
    queue: Vec<PendingExec>,
    ancillary: CpuMeter,
    stale_reexecutions: u64,
    blocks_executed: u64,
    model_conflicts: bool,
    conflict_aborts: u64,
}

impl BlockStmExecutor {
    /// Creates an executor with the given per-transaction and per-block
    /// costs. Within-block conflict modelling is off — the paper's
    /// disjoint-account workload never conflicts, so the legacy timing
    /// is preserved exactly.
    pub fn new(per_tx: SimDuration, per_block: SimDuration) -> Self {
        BlockStmExecutor {
            per_tx,
            per_block,
            busy_until: SimTime::ZERO,
            queue: Vec::new(),
            ancillary: CpuMeter::new(ANCILLARY_HALF_LIFE),
            stale_reexecutions: 0,
            blocks_executed: 0,
            model_conflicts: false,
            conflict_aborts: 0,
        }
    }

    /// Enables the Block-STM within-block conflict model: transactions
    /// of a block that touch the same account (as sender or receiver)
    /// abort and re-execute speculatively, adding one `per_tx` charge
    /// per conflict. Production-shaped Zipf traffic turns this on.
    pub fn with_conflict_model(mut self) -> Self {
        self.model_conflicts = true;
        self
    }

    /// Counts within-block read-write conflicts: for every account
    /// appearing `k > 1` times across the block's `{from, to}` sets,
    /// `k − 1` speculative executions abort and re-run — the optimistic
    /// Block-STM schedule where the lowest-index transaction wins each
    /// round.
    fn block_conflicts(block: &Block) -> u64 {
        let mut touches: BTreeMap<AccountId, u64> = BTreeMap::new();
        for tx in block.txs() {
            *touches.entry(tx.from()).or_insert(0) += 1;
            *touches.entry(tx.to()).or_insert(0) += 1;
        }
        touches.values().map(|&k| k.saturating_sub(1)).sum()
    }

    /// The estimated ancillary core utilisation at `now` (0 = idle).
    pub fn ancillary_rate(&mut self, now: SimTime) -> f64 {
        // Steady-state meter level for input rate r is r·HL/ln2.
        self.ancillary.usage(now) * std::f64::consts::LN_2 / ANCILLARY_HALF_LIFE.as_secs_f64()
    }

    /// The processor-sharing stretch factor applied to block execution.
    pub fn contention_factor(&mut self, now: SimTime) -> f64 {
        1.0 / (1.0 - self.ancillary_rate(now).min(CONTENTION_CAP))
    }

    /// Enqueues a committed block for execution; returns the time at
    /// which its execution completes (arm a timer for it).
    pub fn submit_block(&mut self, now: SimTime, block: Block) -> SimTime {
        let mut base = self.per_block + self.per_tx * block.len() as u64;
        if self.model_conflicts {
            let conflicts = Self::block_conflicts(&block);
            self.conflict_aborts += conflicts;
            base += self.per_tx * conflicts;
        }
        let cost = base.mul_f64(self.contention_factor(now));
        let start = self.busy_until.max(now);
        let done_at = start + cost;
        self.busy_until = done_at;
        self.queue.push(PendingExec { block, done_at });
        done_at
    }

    /// Takes the executed block whose completion time has been reached.
    ///
    /// Returns `None` for spurious timer fires (e.g. after a restart
    /// cleared the queue).
    pub fn take_completed(&mut self, now: SimTime) -> Option<Block> {
        let pos = self.queue.iter().position(|p| p.done_at <= now)?;
        self.blocks_executed += 1;
        Some(self.queue.remove(pos).block)
    }

    /// Charges ancillary work (request validation, speculative dispatch):
    /// it stretches subsequently submitted blocks (processor sharing)
    /// rather than queueing ahead of them.
    pub fn charge(&mut self, now: SimTime, cost: SimDuration) {
        self.ancillary.charge(now, cost.as_secs_f64());
    }

    /// Charges a `SEQUENCE_NUMBER_TOO_OLD` re-execution.
    pub fn charge_stale(&mut self, now: SimTime, cost: SimDuration) {
        self.stale_reexecutions += 1;
        self.charge(now, cost);
    }

    /// When the executor becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Blocks waiting for or undergoing execution.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Number of stale re-executions charged so far.
    pub fn stale_reexecutions(&self) -> u64 {
        self.stale_reexecutions
    }

    /// Number of within-block conflict aborts (zero unless the conflict
    /// model is enabled via [`BlockStmExecutor::with_conflict_model`]).
    pub fn conflict_aborts(&self) -> u64 {
        self.conflict_aborts
    }

    /// Number of blocks fully executed.
    pub fn blocks_executed(&self) -> u64 {
        self.blocks_executed
    }

    /// Drops queued work (volatile state lost in a restart; committed
    /// blocks are re-executed through state sync instead).
    pub fn clear(&mut self, now: SimTime) {
        self.queue.clear();
        self.busy_until = now;
        self.ancillary.reset(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabl_sim::NodeId;
    use stabl_types::{AccountId, Hash32, Transaction};

    fn block(height: u64, txs: usize) -> Block {
        let txs = (0..txs as u64)
            .map(|n| {
                Transaction::transfer(AccountId::new(9), n + height * 100, AccountId::new(1), 1)
            })
            .collect();
        Block::new(Hash32::ZERO, height, NodeId::new(0), txs)
    }

    fn exec() -> BlockStmExecutor {
        BlockStmExecutor::new(SimDuration::from_millis(2), SimDuration::from_millis(10))
    }

    #[test]
    fn cost_scales_with_block_size() {
        let mut e = exec();
        let done = e.submit_block(SimTime::ZERO, block(1, 5));
        assert_eq!(done, SimTime::from_millis(20)); // 10 + 5*2
    }

    #[test]
    fn blocks_serialise() {
        let mut e = exec();
        let d1 = e.submit_block(SimTime::ZERO, block(1, 5));
        let d2 = e.submit_block(SimTime::ZERO, block(2, 5));
        assert_eq!(d2, d1 + SimDuration::from_millis(20));
        assert_eq!(e.backlog(), 2);
    }

    #[test]
    fn take_completed_in_order() {
        let mut e = exec();
        let d1 = e.submit_block(SimTime::ZERO, block(1, 1));
        let d2 = e.submit_block(SimTime::ZERO, block(2, 1));
        assert!(
            e.take_completed(SimTime::ZERO).is_none(),
            "nothing done yet"
        );
        let b1 = e.take_completed(d1).expect("first block done");
        assert_eq!(b1.height(), 1);
        let b2 = e.take_completed(d2).expect("second block done");
        assert_eq!(b2.height(), 2);
        assert_eq!(e.blocks_executed(), 2);
    }

    #[test]
    fn charges_stretch_later_blocks() {
        let mut idle = exec();
        let undisturbed = idle.submit_block(SimTime::ZERO, block(1, 0));
        let mut busy = exec();
        // Sustained ancillary load of ~0.5 cores (well past the meter's
        // half-life warm-up) stretches execution towards 2x.
        for ms in 0..12_000u64 {
            busy.charge(SimTime::from_millis(ms), SimDuration::from_micros(500));
        }
        let at = SimTime::from_millis(12_000);
        let stretched = busy.submit_block(at, block(1, 0));
        let undisturbed_cost = undisturbed - SimTime::ZERO;
        let stretched_cost = stretched - at;
        assert!(
            stretched_cost > undisturbed_cost.mul_f64(1.5),
            "expected ≥1.5x stretch: {stretched_cost} vs {undisturbed_cost}"
        );
        assert!(busy.contention_factor(at) > 1.5);
        assert!(busy.ancillary_rate(at) > 0.3);
    }

    #[test]
    fn contention_factor_is_capped() {
        let mut e = exec();
        e.charge(SimTime::ZERO, SimDuration::from_secs(100));
        assert!(
            e.contention_factor(SimTime::ZERO) <= 4.0 + 1e-9,
            "1/(1-0.75) cap"
        );
    }

    #[test]
    fn idle_time_is_not_charged() {
        let mut e = exec();
        let done = e.submit_block(SimTime::from_secs(5), block(1, 0));
        assert_eq!(done, SimTime::from_secs(5) + SimDuration::from_millis(10));
    }

    #[test]
    fn stale_counter_tracks() {
        let mut e = exec();
        e.charge_stale(SimTime::ZERO, SimDuration::from_millis(4));
        e.charge_stale(SimTime::ZERO, SimDuration::from_millis(4));
        assert_eq!(e.stale_reexecutions(), 2);
        assert!(e.ancillary_rate(SimTime::ZERO) > 0.0);
    }

    #[test]
    fn conflict_model_charges_reexecutions() {
        // Five transfers from the same hot sender: 4 sender conflicts
        // plus 4 receiver conflicts (all pay AccountId 1) = 8 aborts.
        let mut e = exec().with_conflict_model();
        let done = e.submit_block(SimTime::ZERO, block(1, 5));
        // 10ms per block + 5*2ms per tx + 8*2ms conflict re-executions.
        assert_eq!(done, SimTime::from_millis(36));
        assert_eq!(e.conflict_aborts(), 8);

        // Off by default: same block costs the legacy 20ms, no aborts.
        let mut legacy = exec();
        assert_eq!(
            legacy.submit_block(SimTime::ZERO, block(1, 5)),
            SimTime::from_millis(20)
        );
        assert_eq!(legacy.conflict_aborts(), 0);
    }

    #[test]
    fn clear_drops_queue() {
        let mut e = exec();
        e.submit_block(SimTime::ZERO, block(1, 10));
        e.clear(SimTime::from_millis(5));
        assert_eq!(e.backlog(), 0);
        assert!(e.take_completed(SimTime::from_secs(1)).is_none());
        assert_eq!(e.busy_until(), SimTime::from_millis(5));
    }
}
