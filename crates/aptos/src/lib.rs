//! # stabl-aptos — a simulated Aptos validator
//!
//! Models the Aptos blockchain (v1.9.3 in the paper) for the Stabl
//! fault-tolerance study:
//!
//! * **DiemBFT consensus** — round-based and leader-based with a
//!   pacemaker whose timeouts grow exponentially on consecutive failures
//!   and a quadratic (all-to-all timeout broadcast) view change, plus
//!   leader-reputation exclusion of unresponsive proposers. This is what
//!   makes Aptos oscillate after `f = t` crashes and stabilise once the
//!   crashed leaders leave the rotation (paper §4).
//! * **Block-STM executor timing** — committed blocks, request
//!   validation and `SEQUENCE_NUMBER_TOO_OLD` re-executions share one
//!   serialised executor timeline; its bounded throughput is why Aptos
//!   fails to clear the backlog after transient failures (§5) and why the
//!   secure client's redundant submissions degrade it (§7).
//! * **Fast-recovery networking** — 5 s connectivity probes with a
//!   2 s-base exponential backoff capped at 30 s, giving Aptos the same
//!   sensitivity to partitions as to transient faults (§6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod executor;
mod node;

pub use config::AptosConfig;
pub use executor::BlockStmExecutor;
pub use node::{AptosMsg, AptosNode, AptosTimer};

// Placeholder modules for the other crates are created as those crates
// are implemented; nothing else lives here.

/// [`AptosNode`] wrapped with message-level Byzantine behaviors
/// (mutate, equivocate, delay, withhold) for selected nodes; configure
/// via [`AptosConfig::with_byzantine`].
pub type ByzantineAptosNode = stabl_sim::ByzantineWrapper<AptosNode>;
