//! The simulated Aptos validator: DiemBFT consensus (round-based,
//! leader-based, quadratic view change), shared mempool, Block-STM
//! executor timing and Aptos' fast-recovery connection management.

use std::collections::{BTreeMap, BTreeSet};

use stabl_sim::{ConnAction, ConnectionManager, ContentionStats, Ctx, NodeId, Protocol, SimTime};
use stabl_types::{AccountPool, Block, Hash32, Ledger, Transaction, TxId};

use crate::{AptosConfig, BlockStmExecutor};

/// Wire messages of the simulated Aptos network.
#[derive(Clone, Debug)]
pub enum AptosMsg {
    /// Shared-mempool transaction broadcast.
    TxGossip(Transaction),
    /// Leader's block proposal for a (height, round).
    Proposal {
        /// Chain height being decided.
        height: u64,
        /// DiemBFT round within the height.
        round: u64,
        /// The proposed block.
        block: Block,
    },
    /// First-phase vote on a proposal.
    Vote {
        /// Chain height being decided.
        height: u64,
        /// DiemBFT round within the height.
        round: u64,
        /// Hash of the voted block.
        hash: Hash32,
    },
    /// Second-phase (commit) vote once a quorum certificate formed.
    CommitVote {
        /// Chain height being decided.
        height: u64,
        /// DiemBFT round within the height.
        round: u64,
        /// Hash of the certified block.
        hash: Hash32,
    },
    /// Pacemaker timeout for a round (the quadratic view-change path).
    Timeout {
        /// Chain height being decided.
        height: u64,
        /// Round that timed out.
        round: u64,
    },
    /// State-sync request: send me committed blocks from this height on.
    SyncRequest {
        /// First height the requester is missing.
        from_height: u64,
    },
    /// State-sync response carrying a batch of committed blocks.
    SyncResponse {
        /// Consecutive committed blocks starting at the requested height.
        blocks: Vec<Block>,
    },
    /// Connection keep-alive.
    Heartbeat,
    /// Reconnection attempt.
    Dial,
    /// Reconnection acknowledgement.
    DialAck,
}

/// Timer tokens of the Aptos node.
#[derive(Clone, Debug)]
pub enum AptosTimer {
    /// Pacemaker deadline for (height, round).
    Round {
        /// Height the timer was armed in.
        height: u64,
        /// Round the timer was armed in.
        round: u64,
    },
    /// Leader batching delay before proposing in (height, round).
    Propose {
        /// Height the timer was armed in.
        height: u64,
        /// Round the timer was armed in.
        round: u64,
    },
    /// A Block-STM execution completion instant.
    ExecDone,
    /// Periodic connection-manager tick.
    ConnTick,
}

/// A simulated Aptos validator node.
#[derive(Debug)]
pub struct AptosNode {
    id: NodeId,
    n: usize,
    config: AptosConfig,
    // Durable state.
    chain: Vec<Block>,
    ledger: Ledger,
    executed_height: u64,
    // Consensus state (volatile).
    height: u64,
    round: u64,
    consecutive_failures: u32,
    proposal: Option<Block>,
    voted: bool,
    commit_voted: bool,
    votes: BTreeMap<Hash32, BTreeSet<NodeId>>,
    commit_votes: BTreeMap<Hash32, BTreeSet<NodeId>>,
    timeouts: BTreeSet<NodeId>,
    // Leader reputation.
    strikes: Vec<u32>,
    excluded_until: Vec<SimTime>,
    // Mempool and execution.
    pool: AccountPool,
    executor: BlockStmExecutor,
    // Networking.
    conn: ConnectionManager,
    syncing: bool,
}

impl AptosNode {
    fn quorum(&self) -> usize {
        self.n * 2 / 3 + 1
    }

    /// The committed chain height (number of committed blocks).
    pub fn chain_height(&self) -> u64 {
        self.chain.len() as u64
    }

    /// The height up to which blocks have been executed.
    pub fn executed_height(&self) -> u64 {
        self.executed_height
    }

    /// Number of pending mempool transactions.
    pub fn mempool_len(&self) -> usize {
        self.pool.len()
    }

    /// The node's ledger (post-execution state).
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Stale (`SEQUENCE_NUMBER_TOO_OLD`) re-executions observed.
    pub fn stale_reexecutions(&self) -> u64 {
        self.executor.stale_reexecutions()
    }

    /// The Block-STM executor timing model (for diagnostics).
    pub fn executor(&self) -> &BlockStmExecutor {
        &self.executor
    }

    /// The round the pacemaker is currently in.
    pub fn current_round(&self) -> u64 {
        self.round
    }

    /// The leader scheduled for `(height, round)` given the local
    /// reputation state: round-robin over non-excluded validators.
    fn scheduled_leader(&self, height: u64, round: u64, now: SimTime) -> NodeId {
        let active: Vec<NodeId> = NodeId::all(self.n)
            .filter(|p| self.excluded_until[p.index()] <= now)
            .collect();
        if active.is_empty() {
            return NodeId::new(((height + round) % self.n as u64) as u32);
        }
        active[((height + round) % active.len() as u64) as usize]
    }

    fn round_timeout(&self) -> stabl_sim::SimDuration {
        let factor = (self.config.timeout_factor_permille as f64 / 1000.0)
            .powi(self.consecutive_failures as i32);
        self.config
            .round_timeout
            .mul_f64(factor)
            .min(self.config.timeout_cap)
    }

    fn enter_round(&mut self, height: u64, round: u64, ctx: &mut Ctx<'_, Self>) {
        ctx.span("bft-round");
        ctx.gauge("round", round);
        ctx.gauge("height", height);
        ctx.gauge("mempool_depth", self.pool.len() as u64);
        ctx.gauge("connections", self.conn.connected_peers().len() as u64);
        self.height = height;
        self.round = round;
        self.proposal = None;
        self.voted = false;
        self.commit_voted = false;
        self.votes.clear();
        self.commit_votes.clear();
        self.timeouts.clear();
        ctx.set_timer(self.round_timeout(), AptosTimer::Round { height, round });
        if self.scheduled_leader(height, round, ctx.now()) == self.id {
            ctx.set_timer(
                self.config.propose_delay,
                AptosTimer::Propose { height, round },
            );
        }
    }

    fn propose(&mut self, ctx: &mut Ctx<'_, Self>) {
        ctx.span("propose");
        let txs = self.pool.take_ready(self.config.max_block_txs);
        let parent = self.chain.last().map(Block::hash).unwrap_or(Hash32::ZERO);
        let block = Block::new(parent, self.height, self.id, txs);
        let msg = AptosMsg::Proposal {
            height: self.height,
            round: self.round,
            block: block.clone(),
        };
        ctx.multicast(self.conn.connected_peers(), msg);
        self.handle_proposal(self.id, self.height, self.round, block, ctx);
    }

    /// Adopts a higher round observed in a peer's message (round
    /// synchronisation — lets restarted validators rejoin the pacemaker).
    fn maybe_catch_up_round(&mut self, height: u64, round: u64, ctx: &mut Ctx<'_, Self>) {
        if height == self.height && round > self.round {
            self.enter_round(height, round, ctx);
        }
    }

    fn handle_proposal(
        &mut self,
        from: NodeId,
        height: u64,
        round: u64,
        block: Block,
        ctx: &mut Ctx<'_, Self>,
    ) {
        if height != self.height || round != self.round || self.proposal.is_some() {
            if height > self.height && !self.syncing {
                self.syncing = true;
                ctx.send(
                    from,
                    AptosMsg::SyncRequest {
                        from_height: self.chain_height() + 1,
                    },
                );
            }
            return;
        }
        let hash = block.hash();
        self.proposal = Some(block);
        if !self.voted {
            self.voted = true;
            let msg = AptosMsg::Vote {
                height,
                round,
                hash,
            };
            ctx.multicast(self.conn.connected_peers(), msg);
            self.handle_vote(self.id, height, round, hash, ctx);
        }
    }

    fn handle_vote(
        &mut self,
        from: NodeId,
        height: u64,
        round: u64,
        hash: Hash32,
        ctx: &mut Ctx<'_, Self>,
    ) {
        if height != self.height || round != self.round {
            return;
        }
        let votes = self.votes.entry(hash).or_default();
        votes.insert(from);
        if votes.len() >= self.quorum() && !self.commit_voted {
            self.commit_voted = true;
            let msg = AptosMsg::CommitVote {
                height,
                round,
                hash,
            };
            ctx.multicast(self.conn.connected_peers(), msg);
            self.handle_commit_vote(self.id, height, round, hash, ctx);
        }
    }

    fn handle_commit_vote(
        &mut self,
        from: NodeId,
        height: u64,
        round: u64,
        hash: Hash32,
        ctx: &mut Ctx<'_, Self>,
    ) {
        if height != self.height || round != self.round {
            return;
        }
        let votes = self.commit_votes.entry(hash).or_default();
        votes.insert(from);
        if votes.len() >= self.quorum() {
            match &self.proposal {
                Some(block) if block.hash() == hash => {
                    let block = block.clone();
                    self.commit_block(block, ctx);
                }
                _ => {
                    // Certified but the proposal never arrived: fetch it.
                    if !self.syncing {
                        self.syncing = true;
                        ctx.send(
                            from,
                            AptosMsg::SyncRequest {
                                from_height: self.chain_height() + 1,
                            },
                        );
                    }
                }
            }
        }
    }

    fn commit_block(&mut self, block: Block, ctx: &mut Ctx<'_, Self>) {
        debug_assert_eq!(block.height(), self.chain_height() + 1);
        for tx in block.txs() {
            self.pool.mark_committed(tx.from(), tx.nonce() + 1);
        }
        let done_at = self.executor.submit_block(ctx.now(), block.clone());
        ctx.set_timer(done_at - ctx.now(), AptosTimer::ExecDone);
        self.chain.push(block);
        self.consecutive_failures = 0;
        let next = self.chain_height() + 1;
        self.enter_round(next, 0, ctx);
    }

    fn handle_timeout_msg(
        &mut self,
        from: NodeId,
        height: u64,
        round: u64,
        ctx: &mut Ctx<'_, Self>,
    ) {
        if height != self.height {
            return;
        }
        if round > self.round {
            // Join the higher round and immediately declare our own
            // timeout for it, so a timeout certificate can form.
            self.enter_round(height, round, ctx);
            self.declare_timeout(ctx);
        }
        if round == self.round {
            self.timeouts.insert(from);
            if self.timeouts.len() >= self.quorum() {
                self.advance_after_timeout(ctx);
            }
        }
    }

    fn declare_timeout(&mut self, ctx: &mut Ctx<'_, Self>) {
        let msg = AptosMsg::Timeout {
            height: self.height,
            round: self.round,
        };
        ctx.multicast(self.conn.connected_peers(), msg);
        self.timeouts.insert(self.id);
        if self.timeouts.len() >= self.quorum() {
            self.advance_after_timeout(ctx);
        }
    }

    fn advance_after_timeout(&mut self, ctx: &mut Ctx<'_, Self>) {
        // Strike the leader whose round failed (leader reputation).
        let leader = self.scheduled_leader(self.height, self.round, ctx.now());
        let strikes = &mut self.strikes[leader.index()];
        *strikes += 1;
        if *strikes >= self.config.reputation_strikes {
            *strikes = 0;
            self.excluded_until[leader.index()] = ctx.now() + self.config.reputation_window;
        }
        self.consecutive_failures += 1;
        let (h, r) = (self.height, self.round + 1);
        self.enter_round(h, r, ctx);
    }

    fn handle_sync_request(&mut self, from: NodeId, from_height: u64, ctx: &mut Ctx<'_, Self>) {
        if from_height > self.chain_height() {
            return;
        }
        let start = (from_height.max(1) - 1) as usize;
        let end = (start + 50).min(self.chain.len());
        let blocks = self.chain[start..end].to_vec();
        if !blocks.is_empty() {
            ctx.send(from, AptosMsg::SyncResponse { blocks });
        }
    }

    fn handle_sync_response(&mut self, from: NodeId, blocks: Vec<Block>, ctx: &mut Ctx<'_, Self>) {
        let mut advanced = false;
        for block in blocks {
            if block.height() == self.chain_height() + 1 {
                for tx in block.txs() {
                    self.pool.mark_committed(tx.from(), tx.nonce() + 1);
                }
                let done_at = self.executor.submit_block(ctx.now(), block.clone());
                ctx.set_timer(done_at - ctx.now(), AptosTimer::ExecDone);
                self.chain.push(block);
                advanced = true;
            }
        }
        self.syncing = false;
        if advanced {
            let next = self.chain_height() + 1;
            self.enter_round(next, 0, ctx);
            // Possibly still behind: ask for more.
            ctx.send(
                from,
                AptosMsg::SyncRequest {
                    from_height: self.chain_height() + 1,
                },
            );
            self.syncing = true;
        }
    }

    fn run_conn_tick(&mut self, ctx: &mut Ctx<'_, Self>) {
        for action in self.conn.tick(ctx.now()) {
            match action {
                ConnAction::SendHeartbeat(peer) => ctx.send(peer, AptosMsg::Heartbeat),
                ConnAction::SendDial(peer) => ctx.send(peer, AptosMsg::Dial),
                ConnAction::Disconnected(_) => {}
            }
        }
        ctx.set_timer(self.config.conn_tick, AptosTimer::ConnTick);
    }

    /// A peer we had lost contact with is back: resynchronise.
    fn on_reconnected(&mut self, peer: NodeId, ctx: &mut Ctx<'_, Self>) {
        ctx.send(
            peer,
            AptosMsg::SyncRequest {
                from_height: self.chain_height() + 1,
            },
        );
        // Share our pacemaker position so the peer can catch up rounds.
        ctx.send(
            peer,
            AptosMsg::Timeout {
                height: self.height,
                round: self.round,
            },
        );
    }

    fn drain_executor(&mut self, ctx: &mut Ctx<'_, Self>) {
        while let Some(block) = self.executor.take_completed(ctx.now()) {
            if block.height() != self.executed_height + 1 {
                continue; // stale (pre-restart) completion
            }
            for tx in block.txs() {
                match self.ledger.apply(tx) {
                    Ok(id) => ctx.commit(id),
                    Err(_) => {
                        // SEQUENCE_NUMBER_TOO_OLD (or a gap): charged as a
                        // speculative re-execution.
                        self.executor
                            .charge_stale(ctx.now(), self.config.stale_exec_cost);
                    }
                }
            }
            self.executed_height = block.height();
        }
    }
}

impl Protocol for AptosNode {
    type Msg = AptosMsg;
    type Request = Transaction;
    type Commit = TxId;
    type Timer = AptosTimer;
    type Config = AptosConfig;

    fn new(id: NodeId, n: usize, config: &AptosConfig, ctx: &mut Ctx<'_, Self>) -> Self {
        let mut node = AptosNode {
            id,
            n,
            config: config.clone(),
            chain: Vec::new(),
            ledger: if config.model_contention {
                Ledger::with_lazy_balance(u64::MAX / 512)
            } else {
                Ledger::with_uniform_balance(256, u64::MAX / 512)
            },
            executed_height: 0,
            height: 1,
            round: 0,
            consecutive_failures: 0,
            proposal: None,
            voted: false,
            commit_voted: false,
            votes: BTreeMap::new(),
            commit_votes: BTreeMap::new(),
            timeouts: BTreeSet::new(),
            strikes: vec![0; n],
            excluded_until: vec![SimTime::ZERO; n],
            pool: AccountPool::new(config.mempool_capacity),
            executor: if config.model_contention {
                BlockStmExecutor::new(config.exec_per_tx, config.exec_per_block)
                    .with_conflict_model()
            } else {
                BlockStmExecutor::new(config.exec_per_tx, config.exec_per_block)
            },
            conn: ConnectionManager::new(id, n, config.conn),
            syncing: false,
        };
        node.enter_round(1, 0, ctx);
        ctx.set_timer(node.config.conn_tick, AptosTimer::ConnTick);
        node
    }

    fn on_message(&mut self, from: NodeId, msg: AptosMsg, ctx: &mut Ctx<'_, Self>) {
        if self.conn.on_heard(from, ctx.now()) {
            self.on_reconnected(from, ctx);
        }
        match msg {
            AptosMsg::TxGossip(tx) => {
                // Shared-mempool ingestion costs executor time; stale
                // copies of committed transactions trigger the
                // SEQUENCE_NUMBER_TOO_OLD speculative path.
                if self.pool.is_stale(&tx) {
                    self.executor
                        .charge_stale(ctx.now(), self.config.stale_exec_cost);
                } else {
                    self.executor.charge(ctx.now(), self.config.validation_cost);
                    self.pool.insert(tx);
                }
            }
            AptosMsg::Proposal {
                height,
                round,
                block,
            } => {
                self.maybe_catch_up_round(height, round, ctx);
                self.handle_proposal(from, height, round, block, ctx);
            }
            AptosMsg::Vote {
                height,
                round,
                hash,
            } => {
                self.maybe_catch_up_round(height, round, ctx);
                self.handle_vote(from, height, round, hash, ctx);
            }
            AptosMsg::CommitVote {
                height,
                round,
                hash,
            } => {
                self.maybe_catch_up_round(height, round, ctx);
                self.handle_commit_vote(from, height, round, hash, ctx);
            }
            AptosMsg::Timeout { height, round } => {
                self.handle_timeout_msg(from, height, round, ctx);
            }
            AptosMsg::SyncRequest { from_height } => {
                self.handle_sync_request(from, from_height, ctx);
            }
            AptosMsg::SyncResponse { blocks } => {
                self.handle_sync_response(from, blocks, ctx);
            }
            AptosMsg::Heartbeat => {}
            AptosMsg::Dial => ctx.send(from, AptosMsg::DialAck),
            AptosMsg::DialAck => {}
        }
    }

    fn on_timer(&mut self, timer: AptosTimer, ctx: &mut Ctx<'_, Self>) {
        match timer {
            AptosTimer::Round { height, round } => {
                if height == self.height && round == self.round {
                    // Re-arm so timeouts keep being re-broadcast while the
                    // network lacks a quorum (DiemBFT keeps signalling).
                    ctx.set_timer(self.round_timeout(), AptosTimer::Round { height, round });
                    self.declare_timeout(ctx);
                }
            }
            AptosTimer::Propose { height, round } => {
                if height == self.height && round == self.round && self.proposal.is_none() {
                    self.propose(ctx);
                }
            }
            AptosTimer::ExecDone => self.drain_executor(ctx),
            AptosTimer::ConnTick => self.run_conn_tick(ctx),
        }
    }

    fn on_request(&mut self, tx: Transaction, ctx: &mut Ctx<'_, Self>) {
        // RPC path: validate + speculatively dispatch, then share through
        // the mempool broadcast.
        if self.pool.is_stale(&tx) {
            self.executor
                .charge_stale(ctx.now(), self.config.stale_exec_cost);
            return;
        }
        self.executor.charge(ctx.now(), self.config.validation_cost);
        if self.pool.insert(tx) {
            ctx.multicast(self.conn.connected_peers(), AptosMsg::TxGossip(tx));
        }
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_, Self>) {
        // Volatile state is gone; the chain and ledger are durable.
        self.pool.clear_pending();
        self.executor.clear(ctx.now());
        self.proposal = None;
        self.votes.clear();
        self.commit_votes.clear();
        self.timeouts.clear();
        self.voted = false;
        self.commit_voted = false;
        self.consecutive_failures = 0;
        self.syncing = false;
        self.strikes = vec![0; self.n];
        self.excluded_until = vec![SimTime::ZERO; self.n];
        // Ledger reflects only executed blocks: re-execute the committed
        // suffix that had not finished executing before the crash.
        let resume_from = self.executed_height as usize;
        for index in resume_from..self.chain.len() {
            let block = self.chain[index].clone();
            let done_at = self.executor.submit_block(ctx.now(), block);
            ctx.set_timer(done_at - ctx.now(), AptosTimer::ExecDone);
        }
        // Active recovery: dial everyone immediately and resync.
        self.conn.redial_all(ctx.now());
        let next = self.chain_height() + 1;
        self.enter_round(next, 0, ctx);
        ctx.set_timer(self.config.conn_tick, AptosTimer::ConnTick);
        self.run_conn_tick(ctx);
        ctx.multicast(
            self.conn.connected_peers(),
            AptosMsg::SyncRequest {
                from_height: self.chain_height() + 1,
            },
        );
    }

    fn contention_stats(&self) -> ContentionStats {
        ContentionStats {
            // Every conflict abort re-runs speculatively, on top of the
            // SEQUENCE_NUMBER_TOO_OLD re-executions of stale copies.
            speculative_reexecutions: self.executor.stale_reexecutions()
                + self.executor.conflict_aborts(),
            conflict_aborts: self.executor.conflict_aborts(),
            pool_evictions: self.pool.rejected_full(),
            pool_replacements: self.pool.rejected_conflict(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabl_sim::{NodeStatus, PartitionRule, SimDuration, Simulation};
    use stabl_types::AccountId;

    fn sim(n: usize, seed: u64) -> Simulation<AptosNode> {
        Simulation::new(n, seed, AptosConfig::default())
    }

    fn submit_stream(sim: &mut Simulation<AptosNode>, accounts: u32, tps: u64, from: u64, to: u64) {
        // `tps` transactions per second spread over `accounts` senders,
        // submitted round-robin to the first half of the nodes.
        let targets = (sim.n() as u64 / 2).max(1);
        let period_us = 1_000_000 / tps;
        let mut nonces = vec![0u64; accounts as usize];
        let mut at = SimTime::from_secs(from);
        let mut k = 0u64;
        while at < SimTime::from_secs(to) {
            let acct = (k % accounts as u64) as u32;
            let tx = Transaction::transfer(
                AccountId::new(acct),
                nonces[acct as usize],
                AccountId::new(200 + acct),
                1,
            );
            nonces[acct as usize] += 1;
            sim.schedule_request(at, NodeId::new((k % targets) as u32), tx);
            at += SimDuration::from_micros(period_us);
            k += 1;
        }
    }

    #[test]
    fn commits_offered_load_in_baseline() {
        let mut sim = sim(10, 1);
        submit_stream(&mut sim, 10, 100, 1, 11);
        sim.run_until(SimTime::from_secs(20));
        // 1000 txs, each committed by all 10 nodes.
        let unique: std::collections::HashSet<TxId> =
            sim.commits().iter().map(|c| c.commit).collect();
        assert_eq!(unique.len(), 1000, "all offered transactions commit");
        let node0 = sim.node(NodeId::new(0));
        assert!(node0.chain_height() > 10, "chain advances");
        assert_eq!(node0.ledger().executed(), 1000);
    }

    #[test]
    fn latency_is_subsecond_in_baseline() {
        let mut sim = sim(10, 2);
        let tx = Transaction::transfer(AccountId::new(0), 0, AccountId::new(1), 1);
        sim.schedule_request(SimTime::from_secs(5), NodeId::new(0), tx);
        sim.run_until(SimTime::from_secs(10));
        let commit = sim
            .commits()
            .iter()
            .find(|c| c.commit == tx.id() && c.node == NodeId::new(0))
            .expect("tx committed at the receiving node");
        let latency = commit.time - SimTime::from_secs(5);
        assert!(latency < SimDuration::from_secs(2), "latency {latency}");
    }

    #[test]
    fn survives_f_crashes_with_quorum() {
        let mut sim = sim(10, 3);
        submit_stream(&mut sim, 10, 100, 1, 30);
        for i in 5..8u32 {
            sim.schedule_crash(SimTime::from_secs(10), NodeId::new(i));
        }
        sim.run_until(SimTime::from_secs(45));
        let unique: std::collections::HashSet<TxId> = sim
            .commits()
            .iter()
            .filter(|c| c.node == NodeId::new(0))
            .map(|c| c.commit)
            .collect();
        assert_eq!(unique.len(), 2900, "all load commits despite f=3 crashes");
    }

    #[test]
    fn halts_without_quorum_then_recovers() {
        let mut sim = sim(10, 4);
        submit_stream(&mut sim, 10, 100, 1, 60);
        for i in 5..9u32 {
            sim.schedule_crash(SimTime::from_secs(10), NodeId::new(i)); // f = 4 > t
            sim.schedule_restart(SimTime::from_secs(40), NodeId::new(i));
        }
        sim.run_until(SimTime::from_secs(120));
        // During the outage nothing commits.
        let during = sim
            .commits()
            .iter()
            .filter(|c| c.time > SimTime::from_secs(14) && c.time < SimTime::from_secs(40))
            .count();
        assert_eq!(during, 0, "no quorum, no commits");
        // After the restart the backlog eventually drains.
        let unique: std::collections::HashSet<TxId> = sim
            .commits()
            .iter()
            .filter(|c| c.node == NodeId::new(0))
            .map(|c| c.commit)
            .collect();
        assert_eq!(unique.len(), 5900, "backlog cleared after recovery");
        assert_eq!(sim.status(NodeId::new(5)), NodeStatus::Running);
    }

    #[test]
    fn recovers_from_partition() {
        let mut sim = sim(10, 5);
        submit_stream(&mut sim, 10, 100, 1, 60);
        let isolated: Vec<NodeId> = (5..9u32).map(NodeId::new).collect();
        sim.schedule_partition(
            SimTime::from_secs(10),
            SimTime::from_secs(40),
            PartitionRule::isolate(isolated, 10),
        );
        sim.run_until(SimTime::from_secs(120));
        let unique: std::collections::HashSet<TxId> = sim
            .commits()
            .iter()
            .filter(|c| c.node == NodeId::new(0))
            .map(|c| c.commit)
            .collect();
        assert_eq!(
            unique.len(),
            5900,
            "all load commits after the partition heals"
        );
    }

    #[test]
    fn crashed_leader_rounds_time_out_and_reputation_excludes() {
        let mut sim = sim(4, 6);
        submit_stream(&mut sim, 4, 50, 1, 20);
        sim.schedule_crash(SimTime::from_secs(5), NodeId::new(3)); // t = 1 for n=4
        sim.run_until(SimTime::from_secs(30));
        let node0 = sim.node(NodeId::new(0));
        // Node 3's proposer turns timed out at least reputation_strikes
        // times before being excluded, and the chain still advanced.
        assert!(node0.chain_height() > 20);
        let unique: std::collections::HashSet<TxId> = sim
            .commits()
            .iter()
            .filter(|c| c.node == NodeId::new(0))
            .map(|c| c.commit)
            .collect();
        assert_eq!(unique.len(), 950);
    }

    #[test]
    fn duplicate_submissions_are_deduplicated() {
        let mut sim = sim(4, 7);
        let tx = Transaction::transfer(AccountId::new(0), 0, AccountId::new(1), 5);
        for node in 0..4u32 {
            sim.schedule_request(SimTime::from_secs(1), NodeId::new(node), tx);
        }
        sim.run_until(SimTime::from_secs(10));
        for node in 0..4u32 {
            let commits = sim
                .commits()
                .iter()
                .filter(|c| c.node == NodeId::new(node) && c.commit == tx.id())
                .count();
            assert_eq!(commits, 1, "node {node} commits the transfer exactly once");
        }
        let total: u64 = (0..4u32)
            .map(|i| sim.node(NodeId::new(i)).ledger().executed())
            .sum();
        assert_eq!(total, 4, "each replica executed the transfer once");
    }

    #[test]
    fn stale_submission_after_commit_charges_reexecution() {
        let mut sim = sim(4, 8);
        let tx = Transaction::transfer(AccountId::new(0), 0, AccountId::new(1), 5);
        sim.schedule_request(SimTime::from_secs(1), NodeId::new(0), tx);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.node(NodeId::new(0)).stale_reexecutions(), 0);
        // Resubmitting an already-committed transfer hits the
        // SEQUENCE_NUMBER_TOO_OLD speculative path.
        sim.schedule_request(SimTime::from_secs(5), NodeId::new(0), tx);
        sim.run_until(SimTime::from_secs(6));
        assert!(
            sim.node(NodeId::new(0)).stale_reexecutions() >= 1,
            "stale submission must be charged"
        );
    }

    #[test]
    fn deterministic_runs() {
        let run = |seed| {
            let mut s = sim(4, seed);
            submit_stream(&mut s, 4, 50, 1, 5);
            s.run_until(SimTime::from_secs(10));
            s.commits()
                .iter()
                .map(|c| (c.time.as_micros(), c.node.as_u32()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
    }
}
