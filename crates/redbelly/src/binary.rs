//! DBFT-style binary consensus with a weak coordinator.
//!
//! Redbelly's DBFT (Crain et al., NCA '18) reduces superblock agreement to
//! one binary consensus instance per proposer slot: "is proposer *j*'s
//! batch included at this height?". The binary protocol here keeps DBFT's
//! crash-fault behaviour observable by Stabl:
//!
//! * it is **leaderless** — every round is an all-to-all echo exchange, so
//!   no single slow or crashed node delays a decision (paper §4:
//!   "Redbelly eradicates the leader impact");
//! * a **weak coordinator** (rotating per round) only breaks ties; a
//!   crashed coordinator cannot block convergence;
//! * progress requires `n − t` echoes, so the instance stalls — without
//!   misbehaving — whenever more than `t` nodes are down, and resumes as
//!   soon as they echo again.
//!
//! The implementation is a pure state machine: the node feeds received
//! echoes in and materialises the returned actions as messages.

use std::collections::BTreeMap;

use stabl_sim::NodeId;

/// An action requested by the instance; the owning node sends the
/// corresponding message to all peers (and feeds it back to itself).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryAction {
    /// Broadcast an echo of `value` for `round`.
    Echo {
        /// The round the echo belongs to.
        round: u64,
        /// The echoed estimate.
        value: bool,
    },
    /// Broadcast that the instance decided `value`.
    Decide(bool),
}

/// One binary consensus instance (height, slot).
#[derive(Clone, Debug)]
pub struct BinaryInstance {
    n: usize,
    quorum: usize,
    started: bool,
    est: bool,
    round: u64,
    /// Echoes per round; first echo per node wins.
    echoes: BTreeMap<u64, BTreeMap<NodeId, bool>>,
    decided: Option<bool>,
}

impl BinaryInstance {
    /// Creates an idle instance for an `n`-node network tolerating `t`
    /// crash faults (progress quorum `n − t`).
    ///
    /// # Panics
    ///
    /// Panics unless `n > 3t` (required for majority adoption to be
    /// safe; see [`BinaryInstance`]).
    pub fn new(n: usize, t: usize) -> BinaryInstance {
        assert!(n > 3 * t, "binary consensus requires n > 3t");
        BinaryInstance {
            n,
            quorum: n - t,
            started: false,
            est: false,
            round: 0,
            echoes: BTreeMap::new(),
            decided: None,
        }
    }

    /// The decided value, if any.
    pub fn decision(&self) -> Option<bool> {
        self.decided
    }

    /// `true` once [`BinaryInstance::start`] ran.
    pub fn is_started(&self) -> bool {
        self.started
    }

    /// The current round (for retransmission).
    pub fn current_round(&self) -> u64 {
        self.round
    }

    /// The current estimate (valid once started; for retransmission).
    pub fn current_est(&self) -> bool {
        self.est
    }

    /// The echo `node` recorded for `round`, if any — used to help
    /// laggards: a peer still in an earlier round can be sent our echo
    /// for that round again.
    pub fn recorded_echo(&self, node: NodeId, round: u64) -> Option<bool> {
        self.echoes.get(&round).and_then(|m| m.get(&node).copied())
    }

    /// Starts the instance with estimate `est` on behalf of `me`.
    /// Idempotent: restarting an already-started instance is a no-op.
    pub fn start(&mut self, me: NodeId, est: bool) -> Vec<BinaryAction> {
        if self.started || self.decided.is_some() {
            return Vec::new();
        }
        self.started = true;
        self.est = est;
        let mut actions = vec![BinaryAction::Echo {
            round: 0,
            value: est,
        }];
        self.record(me, 0, est);
        actions.extend(self.try_progress(me));
        actions
    }

    /// Handles an echo from `from` (own echoes are recorded internally by
    /// `start`/round advances and must not be fed back).
    pub fn on_echo(
        &mut self,
        me: NodeId,
        from: NodeId,
        round: u64,
        value: bool,
    ) -> Vec<BinaryAction> {
        if self.decided.is_some() {
            return Vec::new();
        }
        self.record(from, round, value);
        if self.started {
            self.try_progress(me)
        } else {
            Vec::new()
        }
    }

    /// Handles a peer's decision (crash-fault trusted fast path).
    pub fn on_decide(&mut self, value: bool) -> Vec<BinaryAction> {
        if self.decided.is_some() {
            return Vec::new();
        }
        self.decided = Some(value);
        vec![BinaryAction::Decide(value)]
    }

    /// The weak coordinator of `round`: rotates so a crashed node only
    /// ever weakens one round's tie-break.
    fn coordinator(&self, round: u64) -> NodeId {
        NodeId::new((round % self.n as u64) as u32)
    }

    fn record(&mut self, from: NodeId, round: u64, value: bool) {
        self.echoes
            .entry(round)
            .or_default()
            .entry(from)
            .or_insert(value);
    }

    fn try_progress(&mut self, me: NodeId) -> Vec<BinaryAction> {
        let mut actions = Vec::new();
        loop {
            if self.decided.is_some() {
                break;
            }
            let Some(round_echoes) = self.echoes.get(&self.round) else {
                break;
            };
            if round_echoes.len() < self.quorum {
                break;
            }
            let ones = round_echoes.values().filter(|v| **v).count();
            let zeros = round_echoes.len() - ones;
            if ones >= self.quorum {
                self.decided = Some(true);
                actions.push(BinaryAction::Decide(true));
                break;
            }
            if zeros >= self.quorum {
                self.decided = Some(false);
                actions.push(BinaryAction::Decide(false));
                break;
            }
            // Mixed: adopt the local majority. This is safe for crash
            // faults with n > 3t: if any node decided v this round it saw
            // n − t echoes of v, so at most t echoes of ¬v exist anywhere
            // and every quorum has a strict v majority (n − 2t > t). The
            // weak coordinator only breaks exact ties, which cannot occur
            // concurrently with a decision.
            self.est = if ones > zeros {
                true
            } else if zeros > ones {
                false
            } else {
                let coord = self.coordinator(self.round);
                round_echoes.get(&coord).copied().unwrap_or(true)
            };
            self.round += 1;
            self.record(me, self.round, self.est);
            actions.push(BinaryAction::Echo {
                round: self.round,
                value: self.est,
            });
        }
        actions
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    /// Drives a full network with a *randomised* delivery order and
    /// returns the decisions — agreement must hold for every order.
    fn run_shuffled(
        n: usize,
        t: usize,
        ests: &[bool],
        alive: &[bool],
        order_seed: u64,
    ) -> Vec<Option<bool>> {
        use stabl_sim::DetRng;
        let mut rng = DetRng::new(order_seed);
        let mut instances: Vec<BinaryInstance> =
            (0..n).map(|_| BinaryInstance::new(n, t)).collect();
        let mut queue: Vec<(usize, BinaryAction)> = Vec::new();
        for i in 0..n {
            if alive[i] {
                for a in instances[i].start(NodeId::new(i as u32), ests[i]) {
                    queue.push((i, a));
                }
            }
        }
        let mut steps = 0;
        while !queue.is_empty() {
            steps += 1;
            assert!(steps < 200_000, "runaway instance");
            let pick = rng.next_below(queue.len() as u64) as usize;
            let (from, action) = queue.swap_remove(pick);
            for to in 0..n {
                if to == from || !alive[to] {
                    continue;
                }
                let new_actions = match action {
                    BinaryAction::Echo { round, value } => instances[to].on_echo(
                        NodeId::new(to as u32),
                        NodeId::new(from as u32),
                        round,
                        value,
                    ),
                    BinaryAction::Decide(v) => instances[to].on_decide(v),
                };
                for a in new_actions {
                    queue.push((to, a));
                }
            }
        }
        instances.iter().map(|i| i.decision()).collect()
    }

    proptest! {
        /// Agreement and termination hold for every estimate pattern,
        /// every ≤t crash subset and every delivery order.
        #[test]
        fn agreement_under_any_delivery_order(
            pattern in 0u32..128,
            crashed in proptest::option::of(0usize..7),
            order_seed in 0u64..1_000_000,
        ) {
            let n = 7;
            let t = 2;
            let ests: Vec<bool> = (0..n).map(|i| pattern & (1 << i) != 0).collect();
            let alive: Vec<bool> = (0..n).map(|i| Some(i) != crashed).collect();
            let decisions = run_shuffled(n, t, &ests, &alive, order_seed);
            let alive_decisions: Vec<bool> = decisions
                .iter()
                .zip(&alive)
                .filter(|(_, a)| **a)
                .map(|(d, _)| d.expect("alive nodes must decide"))
                .collect();
            prop_assert!(!alive_decisions.is_empty());
            let first = alive_decisions[0];
            prop_assert!(
                alive_decisions.iter().all(|d| *d == first),
                "disagreement: {:?}", decisions
            );
            // Validity: a unanimous estimate decides that estimate.
            let alive_ests: Vec<bool> = ests
                .iter()
                .zip(&alive)
                .filter(|(_, a)| **a)
                .map(|(e, _)| *e)
                .collect();
            if alive_ests.iter().all(|e| *e) {
                prop_assert!(first, "unanimous 1 must decide 1");
            }
            if alive_ests.iter().all(|e| !*e) && crashed.is_none() {
                prop_assert!(!first, "unanimous 0 must decide 0");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// Drives a full network of instances to completion by flooding all
    /// actions; returns the decisions.
    fn run_network(n: usize, t: usize, ests: &[bool], alive: &[bool]) -> Vec<Option<bool>> {
        let mut instances: Vec<BinaryInstance> =
            (0..n).map(|_| BinaryInstance::new(n, t)).collect();
        let mut queue: Vec<(usize, BinaryAction)> = Vec::new();
        for i in 0..n {
            if alive[i] {
                for a in instances[i].start(node(i as u32), ests[i]) {
                    queue.push((i, a));
                }
            }
        }
        let mut steps = 0;
        while let Some((from, action)) = queue.pop() {
            steps += 1;
            assert!(steps < 100_000, "runaway instance");
            for to in 0..n {
                if to == from || !alive[to] {
                    continue;
                }
                let new_actions = match action {
                    BinaryAction::Echo { round, value } => {
                        instances[to].on_echo(node(to as u32), node(from as u32), round, value)
                    }
                    BinaryAction::Decide(v) => instances[to].on_decide(v),
                };
                for a in new_actions {
                    queue.push((to, a));
                }
            }
        }
        instances.iter().map(|i| i.decision()).collect()
    }

    #[test]
    fn unanimous_one_decides_one() {
        let decisions = run_network(4, 1, &[true; 4], &[true; 4]);
        assert!(decisions.iter().all(|d| *d == Some(true)));
    }

    #[test]
    fn unanimous_zero_decides_zero() {
        let decisions = run_network(4, 1, &[false; 4], &[true; 4]);
        assert!(decisions.iter().all(|d| *d == Some(false)));
    }

    #[test]
    fn mixed_estimates_agree() {
        for pattern in 0u32..16 {
            let ests: Vec<bool> = (0..4).map(|i| pattern & (1 << i) != 0).collect();
            let decisions = run_network(4, 1, &ests, &[true; 4]);
            let first = decisions[0].expect("decided");
            assert!(
                decisions.iter().all(|d| *d == Some(first)),
                "disagreement for pattern {pattern:04b}: {decisions:?}"
            );
        }
    }

    #[test]
    fn tolerates_t_crashes() {
        // Node 3 never participates; the other three (quorum = 3) decide.
        let decisions = run_network(4, 1, &[true, true, false, true], &[true, true, true, false]);
        let first = decisions[0].expect("decided despite crash");
        assert_eq!(decisions[1], Some(first));
        assert_eq!(decisions[2], Some(first));
        assert_eq!(decisions[3], None, "crashed node decides nothing");
    }

    #[test]
    fn stalls_below_quorum() {
        // Two of four alive: quorum 3 unreachable, nobody decides.
        let decisions = run_network(4, 1, &[true; 4], &[true, true, false, false]);
        assert_eq!(decisions[0], None);
        assert_eq!(decisions[1], None);
    }

    #[test]
    fn ten_node_mixed_with_three_crashes() {
        let ests: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        let alive: Vec<bool> = (0..10).map(|i| i < 7).collect();
        let decisions = run_network(10, 3, &ests, &alive);
        let first = decisions[0].expect("decided");
        for d in decisions.iter().take(7) {
            assert_eq!(*d, Some(first));
        }
    }

    #[test]
    fn late_echoes_after_decide_ignored() {
        let mut inst = BinaryInstance::new(4, 1);
        inst.start(node(0), true);
        inst.on_echo(node(0), node(1), 0, true);
        let actions = inst.on_echo(node(0), node(2), 0, true);
        assert!(actions.contains(&BinaryAction::Decide(true)));
        assert!(inst.on_echo(node(0), node(3), 0, false).is_empty());
        assert_eq!(inst.decision(), Some(true));
    }

    #[test]
    fn start_is_idempotent() {
        let mut inst = BinaryInstance::new(4, 1);
        let first = inst.start(node(0), true);
        assert!(!first.is_empty());
        assert!(inst.start(node(0), false).is_empty());
        assert!(inst.current_est());
    }

    #[test]
    fn echoes_before_start_are_buffered() {
        let mut inst = BinaryInstance::new(4, 1);
        assert!(inst.on_echo(node(0), node(1), 0, true).is_empty());
        assert!(inst.on_echo(node(0), node(2), 0, true).is_empty());
        // Starting with the quorum already buffered decides immediately.
        let actions = inst.start(node(0), true);
        assert!(actions.contains(&BinaryAction::Decide(true)));
    }

    #[test]
    fn duplicate_echo_not_double_counted() {
        let mut inst = BinaryInstance::new(4, 1);
        inst.start(node(0), true);
        inst.on_echo(node(0), node(1), 0, true);
        inst.on_echo(node(0), node(1), 0, true);
        assert_eq!(
            inst.decision(),
            None,
            "two distinct echoes are not a quorum of three"
        );
    }
}
