//! # stabl-redbelly — a simulated Redbelly validator
//!
//! Models the Redbelly blockchain (v0.36.2 in the paper) for the Stabl
//! fault-tolerance study:
//!
//! * **DBFT superblock consensus** — leaderless and deterministic: every
//!   validator proposes a batch each height, one binary consensus per
//!   proposer slot decides inclusion, and the superblock is the union of
//!   all included batches. No single crashed or slow node can delay a
//!   decision, which is why Redbelly is nearly insensitive to `f = t`
//!   crashes (paper §4), and the uncapped superblock absorbs the whole
//!   post-outage backlog in one or two heights (§5).
//! * **Weak-coordinator binary consensus** — an all-to-all echo exchange
//!   per round with majority adoption and a rotating coordinator used
//!   only for tie-breaks ([`BinaryInstance`]).
//! * **`MaxIdleTime` reconnection** — 30 s idle teardown with a slow dial
//!   schedule, reproducing the ≈81 s partition recovery of §6 versus the
//!   fast, active reconnect after process restarts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binary;
mod config;
mod credence;
mod node;

pub use binary::{BinaryAction, BinaryInstance};
pub use config::RedbellyConfig;
pub use credence::CredenceRead;
pub use node::{RedbellyMsg, RedbellyNode, RedbellyTimer};

/// [`RedbellyNode`] wrapped with message-level Byzantine behaviors
/// (mutate, equivocate, delay, withhold) for selected nodes; configure
/// via [`RedbellyConfig::with_byzantine`].
pub type ByzantineRedbellyNode = stabl_sim::ByzantineWrapper<RedbellyNode>;
