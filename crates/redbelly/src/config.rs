//! Configuration of the simulated Redbelly validator.

use stabl_sim::{ConnConfig, SimDuration};

/// Tunables of the DBFT superblock consensus and networking of a
/// simulated Redbelly validator.
///
/// Defaults model Redbelly v0.36.2 on the paper's testbed. The
/// connection parameters encode the `MaxIdleTime`-driven passive
/// reconnection the paper traces Redbelly's ≈81 s partition recovery to
/// (§6).
#[derive(Clone, Debug)]
pub struct RedbellyConfig {
    /// Maximum transactions a node packs into its per-height proposal.
    /// Redbelly's superblock combines *all* proposals, so the effective
    /// block capacity is up to `n` times this.
    pub max_proposal_txs: usize,
    /// Pool capacity (transactions).
    pub pool_capacity: usize,
    /// Minimum spacing between consecutive superblock heights (chain
    /// pacing; proposals batch during the interval).
    pub height_interval: SimDuration,
    /// How long a node waits for missing proposals before it starts
    /// deciding 0 for the absent slots.
    pub proposal_grace: SimDuration,
    /// Timeout of one binary-consensus round (echo collection).
    pub binary_round_timeout: SimDuration,
    /// Period of the retransmission loop for stalled heights.
    pub retransmit_interval: SimDuration,
    /// A height is considered stalled (and retransmitted) after this.
    pub stall_threshold: SimDuration,
    /// Execution cost per committed transaction (SEVM native transfer).
    pub exec_per_tx: SimDuration,
    /// Fixed execution cost per committed superblock.
    pub exec_per_block: SimDuration,
    /// Connection management: `MaxIdleTime`-style 30 s idle timeout and a
    /// slow reconnection schedule.
    pub conn: ConnConfig,
    /// Connection-manager tick period.
    pub conn_tick: SimDuration,
    /// Models production-shaped contention: funds the whole declared
    /// account population lazily instead of the paper's 256 prefunded
    /// accounts. Off by default so paper-standard runs are
    /// byte-identical.
    pub model_contention: bool,
}

impl Default for RedbellyConfig {
    fn default() -> Self {
        RedbellyConfig {
            max_proposal_txs: 10_000,
            pool_capacity: 200_000,
            height_interval: SimDuration::from_millis(400),
            proposal_grace: SimDuration::from_millis(400),
            binary_round_timeout: SimDuration::from_millis(800),
            retransmit_interval: SimDuration::from_millis(2_000),
            stall_threshold: SimDuration::from_millis(3_000),
            exec_per_tx: SimDuration::from_micros(500),
            exec_per_block: SimDuration::from_millis(5),
            conn: ConnConfig {
                idle_timeout: SimDuration::from_secs(30),
                heartbeat_interval: SimDuration::from_secs(10),
                backoff_base: SimDuration::from_secs(60),
                backoff_factor_permille: 2_000,
                backoff_cap: SimDuration::from_secs(240),
            },
            conn_tick: SimDuration::from_millis(1_000),
            model_contention: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_consistent() {
        let cfg = RedbellyConfig::default();
        assert!(cfg.proposal_grace < cfg.binary_round_timeout);
        assert!(cfg.height_interval >= cfg.proposal_grace);
        assert!(cfg.stall_threshold > cfg.binary_round_timeout);
        assert!(
            cfg.conn.idle_timeout == SimDuration::from_secs(30),
            "MaxIdleTime"
        );
        assert!(cfg.max_proposal_txs > 0);
    }
}

impl RedbellyConfig {
    /// Pairs this config with a Byzantine spec, producing the config of
    /// [`ByzantineRedbellyNode`](crate::ByzantineRedbellyNode): the named
    /// nodes run the same protocol but mutate, equivocate, delay or
    /// withhold their outbound messages.
    pub fn with_byzantine(
        self,
        spec: stabl_sim::ByzantineSpec,
    ) -> stabl_sim::ByzConfig<RedbellyConfig> {
        stabl_sim::ByzConfig::new(self, spec)
    }
}
