//! The simulated Redbelly validator: leaderless DBFT superblock
//! consensus, collaborative (uncapped) blocks and `MaxIdleTime`-driven
//! passive reconnection.

use std::collections::BTreeMap;

use stabl_sim::{ConnAction, ConnectionManager, ContentionStats, Ctx, NodeId, Protocol, SimTime};
use stabl_types::{AccountPool, Ledger, Transaction, TxId};

use crate::{BinaryAction, BinaryInstance, RedbellyConfig};

/// Wire messages of the simulated Redbelly network.
#[derive(Clone, Debug)]
pub enum RedbellyMsg {
    /// Transaction gossip towards every validator's pool.
    TxGossip(Transaction),
    /// A validator's batch proposal for a height.
    Proposal {
        /// The superblock height the batch is proposed for.
        height: u64,
        /// The proposed batch (the slot is the sender id).
        batch: Vec<Transaction>,
    },
    /// Binary-consensus echo for (height, slot, round).
    Echo {
        /// Superblock height.
        height: u64,
        /// Proposer slot the instance decides about.
        slot: u32,
        /// Binary-consensus round.
        round: u64,
        /// Echoed estimate.
        value: bool,
    },
    /// A re-sent echo helping a peer stuck in an earlier round. Carries
    /// the same payload as [`RedbellyMsg::Echo`] but never triggers a
    /// help reply of its own: if both ends have advanced past `round`
    /// (in-flight races, retransmissions, link-level duplicates), plain
    /// echoes would ping-pong between them indefinitely — and under a
    /// duplicating link fault that loop *amplifies* each hop, blowing
    /// up the event queue exponentially.
    EchoHelp {
        /// Superblock height.
        height: u64,
        /// Proposer slot the instance decides about.
        slot: u32,
        /// Binary-consensus round.
        round: u64,
        /// Echoed estimate.
        value: bool,
    },
    /// Binary-consensus decision for (height, slot).
    Decide {
        /// Superblock height.
        height: u64,
        /// Proposer slot the instance decides about.
        slot: u32,
        /// Decided value.
        value: bool,
    },
    /// State-sync request from a recovering or lagging node.
    SyncRequest {
        /// First height the requester is missing.
        from_height: u64,
    },
    /// State-sync response: committed superblock contents.
    SyncResponse {
        /// Height of the first superblock in `superblocks`.
        first_height: u64,
        /// Consecutive committed superblocks (their transactions in
        /// execution order).
        superblocks: Vec<Vec<Transaction>>,
    },
    /// Connection keep-alive.
    Heartbeat,
    /// Reconnection attempt.
    Dial,
    /// Reconnection acknowledgement.
    DialAck,
}

/// Timer tokens of the Redbelly node.
#[derive(Clone, Debug)]
pub enum RedbellyTimer {
    /// Proposal grace deadline: start deciding 0 for absent slots.
    Grace {
        /// Height the grace period was armed for.
        height: u64,
    },
    /// Superblock execution completion.
    ExecDone,
    /// Scheduled start of the next height (chain pacing).
    NextHeight {
        /// The height to enter.
        height: u64,
    },
    /// Periodic retransmission check for stalled heights.
    Retransmit,
    /// Periodic connection-manager tick.
    ConnTick,
}

/// Per-height consensus state.
#[derive(Debug, Default)]
struct HeightState {
    /// Batches received per proposer slot.
    proposals: BTreeMap<u32, Vec<Transaction>>,
    /// One binary instance per proposer slot.
    instances: Vec<BinaryInstance>,
    /// Set when the local node entered this height.
    entered: bool,
    entered_at: SimTime,
    /// Set when a proposal was broadcast for this height.
    proposed: bool,
    /// Set once the superblock for this height was committed locally.
    completed: bool,
}

/// A simulated Redbelly validator node.
#[derive(Debug)]
pub struct RedbellyNode {
    id: NodeId,
    n: usize,
    t: usize,
    config: RedbellyConfig,
    // Durable state.
    chain: Vec<Vec<Transaction>>,
    ledger: Ledger,
    executed_height: u64,
    // Consensus (volatile).
    height: u64,
    heights: BTreeMap<u64, HeightState>,
    // Execution pipeline.
    exec_busy_until: SimTime,
    exec_queue: Vec<(u64, SimTime)>,
    // Pool and networking.
    pool: AccountPool,
    conn: ConnectionManager,
}

impl RedbellyNode {
    /// The committed chain height.
    pub fn chain_height(&self) -> u64 {
        self.chain.len() as u64
    }

    /// The height up to which superblocks are executed.
    pub fn executed_height(&self) -> u64 {
        self.executed_height
    }

    /// Pending pool transactions.
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// The node's ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The height currently under DBFT agreement.
    pub fn current_height(&self) -> u64 {
        self.height
    }

    /// Debug summary of the current height's consensus state (slot →
    /// started/round/decision), for tests and diagnostics.
    pub fn debug_height_summary(&self) -> String {
        match self.heights.get(&self.height) {
            None => format!("h{}: no state", self.height),
            Some(state) => {
                let slots: Vec<String> = state
                    .instances
                    .iter()
                    .enumerate()
                    .map(|(slot, inst)| {
                        let proposal = if state.proposals.contains_key(&(slot as u32)) {
                            "P"
                        } else {
                            "-"
                        };
                        match inst.decision() {
                            Some(v) => format!("{slot}:{proposal}D{}", v as u8),
                            None if inst.is_started() => {
                                format!(
                                    "{slot}:{proposal}r{}e{}",
                                    inst.current_round(),
                                    inst.current_est() as u8
                                )
                            }
                            None => format!("{slot}:{proposal}idle"),
                        }
                    })
                    .collect();
                format!(
                    "h{} entered={} proposed={} [{}]",
                    self.height,
                    state.entered,
                    state.proposed,
                    slots.join(" ")
                )
            }
        }
    }

    fn height_state(&mut self, height: u64) -> &mut HeightState {
        let (n, t) = (self.n, self.t);
        self.heights.entry(height).or_insert_with(|| HeightState {
            instances: (0..n).map(|_| BinaryInstance::new(n, t)).collect(),
            ..HeightState::default()
        })
    }

    fn enter_height(&mut self, height: u64, ctx: &mut Ctx<'_, Self>) {
        ctx.span("dbft-height");
        ctx.gauge("height", height);
        ctx.gauge("mempool_depth", self.pool.len() as u64);
        ctx.gauge("connections", self.conn.connected_peers().len() as u64);
        ctx.gauge("open_heights", self.heights.len() as u64);
        self.height = height;
        self.heights.retain(|h, _| *h >= height);
        let now = ctx.now();
        let state = self.height_state(height);
        state.entered = true;
        state.entered_at = now;
        // Propose our batch (possibly empty — heights pace the chain).
        if !state.proposed {
            state.proposed = true;
            let batch = self.pool.take_ready(self.config.max_proposal_txs);
            let msg = RedbellyMsg::Proposal {
                height,
                batch: batch.clone(),
            };
            ctx.multicast(self.conn.connected_peers(), msg);
            self.accept_proposal(self.id, height, batch, ctx);
        }
        ctx.set_timer(self.config.proposal_grace, RedbellyTimer::Grace { height });
        // Start instances for proposals that arrived before we entered.
        let state = self.height_state(height);
        let ready: Vec<u32> = state.proposals.keys().copied().collect();
        for slot in ready {
            self.start_instance(height, slot, true, ctx);
        }
    }

    fn accept_proposal(
        &mut self,
        from: NodeId,
        height: u64,
        batch: Vec<Transaction>,
        ctx: &mut Ctx<'_, Self>,
    ) {
        if height < self.height {
            return;
        }
        let state = self.height_state(height);
        if state.proposals.contains_key(&from.as_u32()) {
            return;
        }
        state.proposals.insert(from.as_u32(), batch);
        if state.entered {
            self.start_instance(height, from.as_u32(), true, ctx);
        }
    }

    fn start_instance(&mut self, height: u64, slot: u32, est: bool, ctx: &mut Ctx<'_, Self>) {
        ctx.span("binary-consensus");
        let me = self.id;
        let state = self.height_state(height);
        let actions = state.instances[slot as usize].start(me, est);
        self.emit(height, slot, actions, ctx);
    }

    fn emit(
        &mut self,
        height: u64,
        slot: u32,
        actions: Vec<BinaryAction>,
        ctx: &mut Ctx<'_, Self>,
    ) {
        for action in actions {
            let msg = match action {
                BinaryAction::Echo { round, value } => RedbellyMsg::Echo {
                    height,
                    slot,
                    round,
                    value,
                },
                BinaryAction::Decide(value) => RedbellyMsg::Decide {
                    height,
                    slot,
                    value,
                },
            };
            ctx.multicast(self.conn.connected_peers(), msg);
        }
        self.maybe_complete_height(height, ctx);
    }

    fn maybe_complete_height(&mut self, height: u64, ctx: &mut Ctx<'_, Self>) {
        if height != self.height {
            return;
        }
        let state = match self.heights.get(&height) {
            Some(s) if s.entered && !s.completed => s,
            _ => return,
        };
        if !state.instances.iter().all(|i| i.decision().is_some()) {
            return;
        }
        // All slots decided: assemble the superblock in slot order as the
        // *set union* of the included batches — Set Byzantine Consensus
        // combines the valid transactions of all proposals, executing
        // each only once however many proposers included it.
        let mut seen = std::collections::BTreeSet::new();
        let mut superblock = Vec::new();
        for (slot, instance) in state.instances.iter().enumerate() {
            if instance.decision() == Some(true) {
                if let Some(batch) = state.proposals.get(&(slot as u32)) {
                    superblock.extend(batch.iter().copied().filter(|tx| seen.insert(tx.id())));
                }
            }
        }
        self.commit_superblock(height, superblock, ctx);
    }

    fn commit_superblock(
        &mut self,
        height: u64,
        superblock: Vec<Transaction>,
        ctx: &mut Ctx<'_, Self>,
    ) {
        debug_assert_eq!(height, self.chain_height() + 1);
        for tx in &superblock {
            self.pool.mark_committed(tx.from(), tx.nonce() + 1);
        }
        // Schedule SEVM execution.
        let cost = self.config.exec_per_block + self.config.exec_per_tx * superblock.len() as u64;
        let start = self.exec_busy_until.max(ctx.now());
        let done_at = start + cost;
        self.exec_busy_until = done_at;
        self.exec_queue.push((height, done_at));
        ctx.set_timer(done_at - ctx.now(), RedbellyTimer::ExecDone);
        self.chain.push(superblock);
        let state = self.height_state(height);
        state.completed = true;
        // Pace the chain: the next height starts one height-interval
        // after this one started (or immediately if agreement was slow).
        let next_at = state.entered_at + self.config.height_interval;
        let delay = next_at.saturating_since(ctx.now());
        ctx.set_timer(delay, RedbellyTimer::NextHeight { height: height + 1 });
    }

    fn drain_executor(&mut self, ctx: &mut Ctx<'_, Self>) {
        let now = ctx.now();
        while let Some(pos) = self.exec_queue.iter().position(|(_, at)| *at <= now) {
            let (height, _) = self.exec_queue.remove(pos);
            if height != self.executed_height + 1 {
                continue; // stale completion from before a restart
            }
            let txs = self.chain[(height - 1) as usize].clone();
            for tx in &txs {
                if let Ok(id) = self.ledger.apply(tx) {
                    ctx.commit(id);
                }
            }
            self.executed_height = height;
        }
    }

    /// Decides 0 for slots whose proposal never arrived (grace expiry).
    fn handle_grace(&mut self, height: u64, ctx: &mut Ctx<'_, Self>) {
        if height != self.height {
            return;
        }
        let n = self.n as u32;
        let state = self.height_state(height);
        let missing: Vec<u32> = (0..n)
            .filter(|slot| !state.proposals.contains_key(slot))
            .filter(|slot| !state.instances[*slot as usize].is_started())
            .collect();
        for slot in missing {
            self.start_instance(height, slot, false, ctx);
        }
    }

    /// Retransmits proposals and current-round echoes for a stalled
    /// height so reconnecting peers can catch up.
    fn handle_retransmit(&mut self, ctx: &mut Ctx<'_, Self>) {
        ctx.set_timer(self.config.retransmit_interval, RedbellyTimer::Retransmit);
        let height = self.height;
        let Some(state) = self.heights.get(&height) else {
            return;
        };
        if !state.entered
            || ctx.now().saturating_since(state.entered_at) < self.config.stall_threshold
        {
            return;
        }
        let peers = self.conn.connected_peers();
        // A stalled height may mean we missed a commit: ask a peer.
        if let Some(peer) = peers.first() {
            ctx.send(
                *peer,
                RedbellyMsg::SyncRequest {
                    from_height: self.chain_height() + 1,
                },
            );
        }
        // Re-announce our own proposal and every undecided instance's
        // current echo; decided instances re-announce the decision.
        if let Some(batch) = state.proposals.get(&self.id.as_u32()) {
            let msg = RedbellyMsg::Proposal {
                height,
                batch: batch.clone(),
            };
            ctx.multicast(peers.clone(), msg);
        }
        for (slot, instance) in state.instances.iter().enumerate() {
            let slot = slot as u32;
            match instance.decision() {
                Some(value) => {
                    ctx.multicast(
                        peers.clone(),
                        RedbellyMsg::Decide {
                            height,
                            slot,
                            value,
                        },
                    );
                }
                None if instance.is_started() => {
                    let msg = RedbellyMsg::Echo {
                        height,
                        slot,
                        round: instance.current_round(),
                        value: instance.current_est(),
                    };
                    ctx.multicast(peers.clone(), msg);
                }
                None => {}
            }
        }
    }

    fn handle_sync_request(&mut self, from: NodeId, from_height: u64, ctx: &mut Ctx<'_, Self>) {
        if from_height > self.chain_height() || from_height == 0 {
            return;
        }
        let start = (from_height - 1) as usize;
        let end = (start + 20).min(self.chain.len());
        ctx.send(
            from,
            RedbellyMsg::SyncResponse {
                first_height: from_height,
                superblocks: self.chain[start..end].to_vec(),
            },
        );
    }

    fn handle_sync_response(
        &mut self,
        from: NodeId,
        first_height: u64,
        superblocks: Vec<Vec<Transaction>>,
        ctx: &mut Ctx<'_, Self>,
    ) {
        let mut advanced = false;
        for (i, superblock) in superblocks.into_iter().enumerate() {
            let height = first_height + i as u64;
            if height == self.chain_height() + 1 {
                for tx in &superblock {
                    self.pool.mark_committed(tx.from(), tx.nonce() + 1);
                }
                let cost =
                    self.config.exec_per_block + self.config.exec_per_tx * superblock.len() as u64;
                let start = self.exec_busy_until.max(ctx.now());
                let done_at = start + cost;
                self.exec_busy_until = done_at;
                self.exec_queue.push((height, done_at));
                ctx.set_timer(done_at - ctx.now(), RedbellyTimer::ExecDone);
                self.chain.push(superblock);
                advanced = true;
            }
        }
        if advanced {
            self.enter_height(self.chain_height() + 1, ctx);
            ctx.send(
                from,
                RedbellyMsg::SyncRequest {
                    from_height: self.chain_height() + 1,
                },
            );
        }
    }

    fn run_conn_tick(&mut self, ctx: &mut Ctx<'_, Self>) {
        for action in self.conn.tick(ctx.now()) {
            match action {
                ConnAction::SendHeartbeat(peer) => ctx.send(peer, RedbellyMsg::Heartbeat),
                ConnAction::SendDial(peer) => ctx.send(peer, RedbellyMsg::Dial),
                ConnAction::Disconnected(_) => {}
            }
        }
        ctx.set_timer(self.config.conn_tick, RedbellyTimer::ConnTick);
    }

    fn on_reconnected(&mut self, peer: NodeId, ctx: &mut Ctx<'_, Self>) {
        ctx.send(
            peer,
            RedbellyMsg::SyncRequest {
                from_height: self.chain_height() + 1,
            },
        );
    }
}

impl Protocol for RedbellyNode {
    type Msg = RedbellyMsg;
    type Request = Transaction;
    type Commit = TxId;
    type Timer = RedbellyTimer;
    type Config = RedbellyConfig;

    fn new(id: NodeId, n: usize, config: &RedbellyConfig, ctx: &mut Ctx<'_, Self>) -> Self {
        let t = (n - 1) / 3;
        let mut node = RedbellyNode {
            id,
            n,
            t,
            config: config.clone(),
            chain: Vec::new(),
            ledger: if config.model_contention {
                Ledger::with_lazy_balance(u64::MAX / 512)
            } else {
                Ledger::with_uniform_balance(256, u64::MAX / 512)
            },
            executed_height: 0,
            height: 0,
            heights: BTreeMap::new(),
            exec_busy_until: SimTime::ZERO,
            exec_queue: Vec::new(),
            pool: AccountPool::new(config.pool_capacity),
            conn: ConnectionManager::new(id, n, config.conn),
        };
        node.enter_height(1, ctx);
        ctx.set_timer(node.config.retransmit_interval, RedbellyTimer::Retransmit);
        ctx.set_timer(node.config.conn_tick, RedbellyTimer::ConnTick);
        node
    }

    fn on_message(&mut self, from: NodeId, msg: RedbellyMsg, ctx: &mut Ctx<'_, Self>) {
        if self.conn.on_heard(from, ctx.now()) {
            self.on_reconnected(from, ctx);
        }
        match msg {
            RedbellyMsg::TxGossip(tx) => {
                self.pool.insert(tx);
            }
            RedbellyMsg::Proposal { height, batch } => {
                self.accept_proposal(from, height, batch, ctx);
            }
            RedbellyMsg::Echo {
                height,
                slot,
                round,
                value,
            } => {
                if height < self.height || slot as usize >= self.n {
                    return;
                }
                let me = self.id;
                let state = self.height_state(height);
                let actions = state.instances[slot as usize].on_echo(me, from, round, value);
                // Help a peer stuck in an earlier round (e.g. freshly
                // restarted): re-send our echo for that round so its
                // quorum can complete.
                let stale_help = {
                    let inst = &self.heights[&height].instances[slot as usize];
                    if inst.decision().is_none() && round < inst.current_round() {
                        inst.recorded_echo(me, round)
                    } else {
                        None
                    }
                };
                if let Some(value) = stale_help {
                    ctx.send(
                        from,
                        RedbellyMsg::EchoHelp {
                            height,
                            slot,
                            round,
                            value,
                        },
                    );
                }
                self.emit(height, slot, actions, ctx);
            }
            RedbellyMsg::EchoHelp {
                height,
                slot,
                round,
                value,
            } => {
                if height < self.height || slot as usize >= self.n {
                    return;
                }
                let me = self.id;
                let state = self.height_state(height);
                let actions = state.instances[slot as usize].on_echo(me, from, round, value);
                self.emit(height, slot, actions, ctx);
            }
            RedbellyMsg::Decide {
                height,
                slot,
                value,
            } => {
                if height < self.height || slot as usize >= self.n {
                    return;
                }
                let state = self.height_state(height);
                let actions = state.instances[slot as usize].on_decide(value);
                self.emit(height, slot, actions, ctx);
            }
            RedbellyMsg::SyncRequest { from_height } => {
                self.handle_sync_request(from, from_height, ctx);
            }
            RedbellyMsg::SyncResponse {
                first_height,
                superblocks,
            } => {
                self.handle_sync_response(from, first_height, superblocks, ctx);
            }
            RedbellyMsg::Heartbeat => {}
            RedbellyMsg::Dial => ctx.send(from, RedbellyMsg::DialAck),
            RedbellyMsg::DialAck => {}
        }
    }

    fn on_timer(&mut self, timer: RedbellyTimer, ctx: &mut Ctx<'_, Self>) {
        match timer {
            RedbellyTimer::Grace { height } => self.handle_grace(height, ctx),
            RedbellyTimer::ExecDone => self.drain_executor(ctx),
            RedbellyTimer::NextHeight { height } => {
                if height == self.chain_height() + 1 && height > self.height {
                    self.enter_height(height, ctx);
                }
            }
            RedbellyTimer::Retransmit => self.handle_retransmit(ctx),
            RedbellyTimer::ConnTick => self.run_conn_tick(ctx),
        }
    }

    fn on_request(&mut self, tx: Transaction, ctx: &mut Ctx<'_, Self>) {
        if self.pool.insert(tx) {
            ctx.multicast(self.conn.connected_peers(), RedbellyMsg::TxGossip(tx));
        }
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.pool.clear_pending();
        self.heights.clear();
        self.exec_queue.clear();
        self.exec_busy_until = ctx.now();
        // Re-execute committed-but-unexecuted superblocks from disk.
        for height in self.executed_height + 1..=self.chain_height() {
            let txs_len = self.chain[(height - 1) as usize].len();
            let cost = self.config.exec_per_block + self.config.exec_per_tx * txs_len as u64;
            let start = self.exec_busy_until.max(ctx.now());
            let done_at = start + cost;
            self.exec_busy_until = done_at;
            self.exec_queue.push((height, done_at));
            ctx.set_timer(done_at - ctx.now(), RedbellyTimer::ExecDone);
        }
        // Active recovery: dial immediately, resync, rejoin consensus.
        self.conn.redial_all(ctx.now());
        self.enter_height(self.chain_height() + 1, ctx);
        ctx.set_timer(self.config.retransmit_interval, RedbellyTimer::Retransmit);
        ctx.set_timer(self.config.conn_tick, RedbellyTimer::ConnTick);
        self.run_conn_tick(ctx);
        ctx.multicast(
            self.conn.connected_peers(),
            RedbellyMsg::SyncRequest {
                from_height: self.chain_height() + 1,
            },
        );
    }

    fn contention_stats(&self) -> ContentionStats {
        ContentionStats {
            pool_evictions: self.pool.rejected_full(),
            pool_replacements: self.pool.rejected_conflict(),
            ..ContentionStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabl_sim::{PartitionRule, SimDuration, Simulation};
    use stabl_types::AccountId;
    use std::collections::HashSet;

    fn sim(n: usize, seed: u64) -> Simulation<RedbellyNode> {
        Simulation::new(n, seed, RedbellyConfig::default())
    }

    fn submit_stream(
        sim: &mut Simulation<RedbellyNode>,
        accounts: u32,
        tps: u64,
        from: u64,
        to: u64,
    ) {
        let targets = (sim.n() as u64 / 2).max(1);
        let period_us = 1_000_000 / tps;
        let mut nonces = vec![0u64; accounts as usize];
        let mut at = SimTime::from_secs(from);
        let mut k = 0u64;
        while at < SimTime::from_secs(to) {
            let acct = (k % accounts as u64) as u32;
            let tx = Transaction::transfer(
                AccountId::new(acct),
                nonces[acct as usize],
                AccountId::new(200 + acct),
                1,
            );
            nonces[acct as usize] += 1;
            sim.schedule_request(at, NodeId::new((k % targets) as u32), tx);
            at += SimDuration::from_micros(period_us);
            k += 1;
        }
    }

    fn unique_commits_at(sim: &Simulation<RedbellyNode>, node: u32) -> usize {
        sim.commits()
            .iter()
            .filter(|c| c.node == NodeId::new(node))
            .map(|c| c.commit)
            .collect::<HashSet<TxId>>()
            .len()
    }

    #[test]
    fn commits_offered_load_in_baseline() {
        let mut s = sim(10, 1);
        submit_stream(&mut s, 10, 100, 1, 11);
        s.run_until(SimTime::from_secs(20));
        assert_eq!(unique_commits_at(&s, 0), 1000);
        assert!(s.node(NodeId::new(0)).chain_height() > 5);
    }

    #[test]
    fn latency_is_subsecond_in_baseline() {
        let mut s = sim(10, 2);
        let tx = Transaction::transfer(AccountId::new(0), 0, AccountId::new(1), 1);
        s.schedule_request(SimTime::from_secs(5), NodeId::new(0), tx);
        s.run_until(SimTime::from_secs(10));
        let commit = s
            .commits()
            .iter()
            .find(|c| c.commit == tx.id() && c.node == NodeId::new(0))
            .expect("committed");
        assert!(commit.time - SimTime::from_secs(5) < SimDuration::from_secs(2));
    }

    #[test]
    fn insensitive_to_f_crashes() {
        let mut s = sim(10, 3);
        submit_stream(&mut s, 10, 100, 1, 30);
        for i in 5..8u32 {
            s.schedule_crash(SimTime::from_secs(10), NodeId::new(i));
        }
        s.run_until(SimTime::from_secs(40));
        assert_eq!(
            unique_commits_at(&s, 0),
            2900,
            "f = t crashes do not lose liveness"
        );
    }

    #[test]
    fn stalls_beyond_t_then_recovers_fast() {
        let mut s = sim(10, 4);
        submit_stream(&mut s, 10, 100, 1, 60);
        for i in 5..9u32 {
            s.schedule_crash(SimTime::from_secs(10), NodeId::new(i));
            s.schedule_restart(SimTime::from_secs(40), NodeId::new(i));
        }
        s.run_until(SimTime::from_secs(80));
        let during = s
            .commits()
            .iter()
            .filter(|c| c.time > SimTime::from_secs(13) && c.time < SimTime::from_secs(40))
            .count();
        assert_eq!(during, 0, "no quorum, no commits");
        // The superblock absorbs the whole backlog almost immediately.
        let node0_by_50: HashSet<TxId> = s
            .commits()
            .iter()
            .filter(|c| c.node == NodeId::new(0) && c.time < SimTime::from_secs(50))
            .map(|c| c.commit)
            .collect();
        assert!(
            node0_by_50.len() as i64 >= 3800,
            "backlog cleared within ~10 s of restart, got {}",
            node0_by_50.len()
        );
        assert_eq!(unique_commits_at(&s, 0), 5900);
    }

    #[test]
    fn recovers_from_partition_after_reconnect_timeouts() {
        let mut s = sim(10, 5);
        submit_stream(&mut s, 10, 100, 1, 120);
        let isolated: Vec<NodeId> = (5..9u32).map(NodeId::new).collect();
        s.schedule_partition(
            SimTime::from_secs(10),
            SimTime::from_secs(45),
            PartitionRule::isolate(isolated, 10),
        );
        s.run_until(SimTime::from_secs(220));
        assert_eq!(
            unique_commits_at(&s, 0),
            11900,
            "all load commits eventually"
        );
        // Recovery is delayed by the reconnect schedule (passive
        // MaxIdleTime teardown at ~40 s, first dial one backoff later):
        // no commits right after the heal.
        let right_after: Vec<_> = s
            .commits()
            .iter()
            .filter(|c| c.time > SimTime::from_secs(46) && c.time < SimTime::from_secs(60))
            .collect();
        assert!(
            right_after.is_empty(),
            "passive reconnection should delay recovery past the heal"
        );
    }

    #[test]
    fn superblock_combines_batches_from_all_proposers() {
        let mut s = sim(4, 6);
        // Four transactions to four different nodes in the same height
        // window: the superblock should include all of them at once.
        for node in 0..4u32 {
            let tx = Transaction::transfer(AccountId::new(node), 0, AccountId::new(99), 1);
            s.schedule_request(SimTime::from_secs(2), NodeId::new(node), tx);
        }
        s.run_until(SimTime::from_secs(6));
        assert_eq!(unique_commits_at(&s, 0), 4);
        let node0 = s.node(NodeId::new(0));
        // All four landed within two heights (gossip may split them).
        let heights_used = node0.chain_height().min(node0.executed_height());
        assert!(heights_used >= 1);
    }

    #[test]
    fn duplicate_submissions_are_deduplicated() {
        let mut s = sim(4, 7);
        let tx = Transaction::transfer(AccountId::new(0), 0, AccountId::new(1), 5);
        for node in 0..4u32 {
            s.schedule_request(SimTime::from_secs(1), NodeId::new(node), tx);
        }
        s.run_until(SimTime::from_secs(8));
        for node in 0..4u32 {
            let commits = s
                .commits()
                .iter()
                .filter(|c| c.node == NodeId::new(node) && c.commit == tx.id())
                .count();
            assert_eq!(commits, 1, "node {node} commits once");
        }
    }

    #[test]
    fn deterministic_runs() {
        let run = |seed| {
            let mut s = sim(4, seed);
            submit_stream(&mut s, 4, 50, 1, 5);
            s.run_until(SimTime::from_secs(10));
            s.commits()
                .iter()
                .map(|c| (c.time.as_micros(), c.node.as_u32()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn duplicating_link_with_quorum_exact_crashes_terminates() {
        // Regression: a duplicating link fault over a window where
        // exactly t nodes crash leaves the survivors quorum-exact, so
        // instances run multiple rounds and stale echoes circulate. If
        // stale-echo help could trigger further help, every link-level
        // duplicate would grow the circulating population ~(1 + dup_p)×
        // per hop — an event-queue explosion that never reaches the
        // horizon. With help carried by EchoHelp (which is never
        // answered), the run must finish promptly.
        use stabl_sim::LinkFault;
        let mut s = sim(10, 9);
        submit_stream(&mut s, 10, 100, 1, 12);
        s.schedule_link_fault(
            SimTime::from_secs(7),
            SimTime::from_secs(12),
            LinkFault::all().with_drop(0.05).with_duplicate(0.15),
        );
        for i in [6u32, 7, 9] {
            s.schedule_crash(SimTime::from_secs(8), NodeId::new(i));
        }
        s.run_until(SimTime::from_secs(20));
        assert!(
            s.node(NodeId::new(0)).chain_height() > 3,
            "quorum-exact survivors keep committing through the fault"
        );
    }

    #[test]
    fn empty_heights_keep_chain_alive() {
        let mut s = sim(4, 8);
        s.run_until(SimTime::from_secs(10));
        assert!(
            s.node(NodeId::new(0)).chain_height() > 3,
            "chain paces without load"
        );
    }
}
