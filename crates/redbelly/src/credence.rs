//! A `credence.js`-style secure read helper.
//!
//! Redbelly ships a client library (credence.js) that only accepts a
//! read result once `t + 1` replicas returned byte-identical responses —
//! with at most `t` Byzantine nodes, at least one of those replicas is
//! honest, so the value is correct. The paper benchmarks its own
//! generic secure client instead for cross-chain fairness (§7) but
//! recommends this library; the helper here is the equivalent
//! aggregation logic over the simulation's hashes.

use std::collections::BTreeMap;

use stabl_sim::NodeId;
use stabl_types::Hash32;

/// Aggregates per-replica read responses until some value reaches the
/// `t + 1` quorum.
///
/// # Examples
///
/// ```
/// use stabl_redbelly::CredenceRead;
/// use stabl_sim::NodeId;
/// use stabl_types::Hash32;
///
/// let mut read = CredenceRead::new(1); // tolerate t = 1 Byzantine node
/// let honest = Hash32::digest(b"balance=42");
/// assert_eq!(read.record(NodeId::new(0), honest), None);
/// // A lying node cannot forge a quorum…
/// assert_eq!(read.record(NodeId::new(1), Hash32::digest(b"balance=999")), None);
/// // …but a second honest response completes t + 1 = 2.
/// assert_eq!(read.record(NodeId::new(2), honest), Some(honest));
/// ```
#[derive(Clone, Debug)]
pub struct CredenceRead {
    t: usize,
    responses: BTreeMap<NodeId, Hash32>,
    decided: Option<Hash32>,
}

impl CredenceRead {
    /// Creates an aggregator tolerating `t` Byzantine responders.
    pub fn new(t: usize) -> CredenceRead {
        CredenceRead {
            t,
            responses: BTreeMap::new(),
            decided: None,
        }
    }

    /// Responses required for acceptance (`t + 1`).
    pub fn quorum(&self) -> usize {
        self.t + 1
    }

    /// Records one replica's response digest; returns the accepted value
    /// once `t + 1` replicas agreed. A replica's first answer is
    /// binding (equivocation is ignored, as over an authenticated
    /// channel).
    pub fn record(&mut self, from: NodeId, digest: Hash32) -> Option<Hash32> {
        if self.decided.is_some() {
            return self.decided;
        }
        self.responses.entry(from).or_insert(digest);
        let agreeing = self.responses.values().filter(|d| **d == digest).count();
        if agreeing >= self.quorum() {
            self.decided = Some(digest);
        }
        self.decided
    }

    /// The accepted value, if a quorum formed.
    pub fn decided(&self) -> Option<Hash32> {
        self.decided
    }

    /// Replicas heard from so far.
    pub fn responses(&self) -> usize {
        self.responses.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(tag: &[u8]) -> Hash32 {
        Hash32::digest(tag)
    }

    #[test]
    fn quorum_of_identical_responses_accepts() {
        let mut read = CredenceRead::new(3);
        for i in 0..3u32 {
            assert_eq!(read.record(NodeId::new(i), h(b"v")), None);
        }
        assert_eq!(read.record(NodeId::new(3), h(b"v")), Some(h(b"v")));
        assert_eq!(read.decided(), Some(h(b"v")));
    }

    #[test]
    fn minority_of_liars_cannot_win() {
        let mut read = CredenceRead::new(2);
        // Two Byzantine responses (= t) agree on a forgery: not enough.
        read.record(NodeId::new(0), h(b"forged"));
        read.record(NodeId::new(1), h(b"forged"));
        assert_eq!(read.decided(), None);
        // Three honest responses settle it.
        read.record(NodeId::new(2), h(b"true"));
        read.record(NodeId::new(3), h(b"true"));
        assert_eq!(read.record(NodeId::new(4), h(b"true")), Some(h(b"true")));
    }

    #[test]
    fn first_answer_per_replica_is_binding() {
        let mut read = CredenceRead::new(1);
        read.record(NodeId::new(0), h(b"a"));
        // The same node "changing its mind" does not double-count.
        assert_eq!(read.record(NodeId::new(0), h(b"a")), None);
        assert_eq!(read.responses(), 1);
    }

    #[test]
    fn decision_is_stable() {
        let mut read = CredenceRead::new(0); // t = 0: first answer wins
        assert_eq!(read.record(NodeId::new(0), h(b"v")), Some(h(b"v")));
        assert_eq!(read.record(NodeId::new(1), h(b"other")), Some(h(b"v")));
    }
}
