//! Adversary search: discover each chain's worst-case fault schedule.
//!
//! The paper measures sensitivity under four hand-picked scenarios
//! (crash, transient, partition, secure client). This crate treats that
//! sensitivity score as a *fitness function* and searches the
//! [`FaultSchedule`](stabl::FaultSchedule) space for schedules that hurt
//! more than anything the paper tried — the chaos-engineering-for-
//! consensus methodology of ChaosETH and Sondhi et al. (PAPERS.md).
//!
//! The pieces, in pipeline order:
//!
//! * [`genome`] — a bounded, budgeted encoding of one adversity
//!   configuration: up to `max_actions` [`FaultAction`](stabl::FaultAction)s
//!   plus an optional Byzantine gene, with all victims drawn from the
//!   paper's non-client validator pool and capped at `t_B + 1` nodes so
//!   discovered schedules stay comparable to the paper's adversary.
//! * [`ops`] — typed mutation operators (perturb window, add/remove
//!   action, swap victims, widen/narrow scope, toggle Byzantine) and
//!   one-point crossover, all pure functions of a
//!   [`DetRng`](stabl_sim::DetRng) stream.
//! * [`fitness`] — the objective ([`Objective::Sensitivity`] or
//!   [`Objective::LivenessLoss`]), the [`Fitness`] record extracted from
//!   a baseline/altered run pair, and the [`Evaluate`] abstraction the
//!   strategies call through (the real evaluator in `stabl-bench` runs
//!   genomes through the campaign engine pool/cache).
//! * [`search`] — two strategies behind one [`SearchStrategy`] trait:
//!   simulated [`Annealing`] and a small (μ+λ) population search
//!   ([`MuPlusLambda`]), both emitting a [`SearchTrace`] that replays
//!   byte-identically from the same seed.
//! * [`shrink`] — a ddmin-style, rng-free pass that drops actions,
//!   narrows victim sets and tightens windows while the fitness stays
//!   above a threshold, producing the minimal committed reproducer.
//! * [`corpus`] — the serialised [`CorpusEntry`] layout committed under
//!   `results/adversary/corpus/` and replayed by CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod fitness;
pub mod genome;
pub mod ops;
pub mod search;
pub mod shrink;

pub use corpus::{CorpusEntry, ScoreCi};
pub use fitness::{
    fitness_of, Evaluate, Fitness, FnEvaluator, Objective, SyntheticEvaluator, LIVENESS_LOSS_KEY,
};
pub use genome::{ByzGene, Genome, SearchSpace};
pub use ops::{crossover, mutate, MutationOp};
pub use search::{
    Annealing, MuPlusLambda, SearchConfig, SearchOutcome, SearchStrategy, SearchTrace, Strategy,
    TraceStep,
};
pub use shrink::{shrink, ShrinkOutcome};
