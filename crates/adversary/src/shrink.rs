//! ddmin-style shrinking of discovered schedules.
//!
//! Given a genome whose fitness key is at least `min_key`, [`shrink`]
//! greedily simplifies it while the key stays at or above `min_key`:
//!
//! 1. drop whole actions (largest simplification first),
//! 2. drop the Byzantine gene,
//! 3. narrow victim sets one node at a time,
//! 4. tighten windows by binary bisection (keep the half that still
//!    reproduces, else keep the middle-trimmed window).
//!
//! The pass is **rng-free** and operates on canonical genomes, so its
//! output depends only on the (unordered) set of actions and the
//! fitness landscape — shuffling the input's action order cannot change
//! the result (asserted by a proptest). Every trial costs one
//! evaluation; the pass stops at a fixpoint or when `max_evals` is
//! exhausted.

use serde::{Deserialize, Serialize};
use stabl::FaultWindow;
use stabl_sim::{SimDuration, SimTime};

use crate::fitness::{Evaluate, Fitness, Objective};
use crate::genome::Genome;

/// The result of a shrink pass.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShrinkOutcome {
    /// The minimal genome still meeting the threshold.
    pub genome: Genome,
    /// Its fitness.
    pub fitness: Fitness,
    /// Evaluations spent shrinking.
    pub evals: usize,
}

/// Shrinks `genome` (with known `fitness`) while its key under
/// `objective` stays ≥ `min_key`. See the module docs for the
/// reduction order.
pub fn shrink(
    genome: &Genome,
    fitness: Fitness,
    eval: &mut dyn Evaluate,
    objective: Objective,
    min_key: f64,
    max_evals: usize,
) -> ShrinkOutcome {
    let mut best = genome.clone();
    best.canonicalize();
    let mut best_fit = fitness;
    let mut evals = 0;
    let try_candidate =
        |candidate: &mut Genome, evals: &mut usize, eval: &mut dyn Evaluate| -> Option<Fitness> {
            if *evals >= max_evals {
                return None;
            }
            candidate.canonicalize();
            let fit = eval.eval(candidate);
            *evals += 1;
            (fit.key(objective) >= min_key).then_some(fit)
        };

    loop {
        let mut changed = false;

        // 1. Drop whole actions, first index first; restart the scan
        //    after every successful removal so indices stay honest.
        let mut i = 0;
        while best.actions.len() > 1 && i < best.actions.len() {
            let mut candidate = best.clone();
            candidate.actions.remove(i);
            match try_candidate(&mut candidate, &mut evals, eval) {
                Some(fit) => {
                    best = candidate;
                    best_fit = fit;
                    changed = true;
                }
                None if evals >= max_evals => break,
                None => i += 1,
            }
        }

        // 2. Drop the Byzantine gene.
        if best.byz.is_some() && !best.actions.is_empty() && evals < max_evals {
            let mut candidate = best.clone();
            candidate.byz = None;
            if let Some(fit) = try_candidate(&mut candidate, &mut evals, eval) {
                best = candidate;
                best_fit = fit;
                changed = true;
            }
        }

        // 3. Narrow victim sets, one node at a time (last node first —
        //    canonical order makes "last" well defined).
        let mut idx = 0;
        while idx < best.actions.len() && evals < max_evals {
            let victims = best.actions[idx].victims().len();
            if victims > 1 {
                let mut candidate = best.clone();
                drop_last_victim(&mut candidate, idx);
                if let Some(fit) = try_candidate(&mut candidate, &mut evals, eval) {
                    best = candidate;
                    best_fit = fit;
                    changed = true;
                    // Same index may shed further victims next loop
                    // iteration (canonicalize may have reordered).
                    continue;
                }
            }
            idx += 1;
        }

        // 4. Tighten windows by bisection: try the earlier half, then
        //    the later half.
        let mut idx = 0;
        while idx < best.actions.len() && evals < max_evals {
            let window = match best.actions[idx].window() {
                Some(w) if w.duration() > stabl_sim::SimDuration::from_secs(1) => w,
                _ => {
                    idx += 1;
                    continue;
                }
            };
            let mid = midpoint(window);
            let halves = [
                FaultWindow::new(window.at, mid),
                FaultWindow::new(mid, window.until),
            ];
            let mut tightened = false;
            for half in halves {
                if half.is_degenerate() || evals >= max_evals {
                    continue;
                }
                let mut candidate = best.clone();
                candidate.actions[idx] = candidate.actions[idx].clone().with_window(half);
                if let Some(fit) = try_candidate(&mut candidate, &mut evals, eval) {
                    best = candidate;
                    best_fit = fit;
                    changed = true;
                    tightened = true;
                    break;
                }
            }
            if !tightened {
                idx += 1;
            }
        }

        if !changed || evals >= max_evals {
            break;
        }
    }

    ShrinkOutcome {
        genome: best,
        fitness: best_fit,
        evals,
    }
}

fn drop_last_victim(genome: &mut Genome, idx: usize) {
    use stabl::FaultAction;
    match &mut genome.actions[idx] {
        FaultAction::Crash { nodes, .. }
        | FaultAction::Transient { nodes, .. }
        | FaultAction::Partition { nodes, .. }
        | FaultAction::Slowdown { nodes, .. } => {
            nodes.pop();
        }
        FaultAction::LinkDegrade { .. } => {}
    }
}

fn midpoint(window: FaultWindow) -> SimTime {
    // Offset form rather than (at + until) / 2: saturating SimTime ops
    // only, no raw micros arithmetic (N-003), and no overflow near the
    // top of the u64 range. Exact whenever until >= at.
    window.at + SimDuration::from_micros(window.until.saturating_since(window.at).as_micros() / 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::FnEvaluator;
    use crate::genome::SearchSpace;
    use stabl::{Chain, FaultAction, PaperSetup};
    use stabl_sim::DetRng;

    fn space() -> SearchSpace {
        SearchSpace::paper(&PaperSetup::quick(60, 1), Chain::Redbelly)
    }

    fn fit(score: f64) -> Fitness {
        Fitness {
            lost_liveness: false,
            score: Some(score),
            improved: false,
            unresolved_frac: 0.0,
        }
    }

    #[test]
    fn shrink_removes_irrelevant_actions() {
        let s = space();
        let mut rng = DetRng::new(77);
        // Fitness: high iff the genome contains a crash action.
        let mut eval = FnEvaluator::new(|g: &Genome| {
            let has_crash = g
                .actions
                .iter()
                .any(|a| matches!(a, FaultAction::Crash { .. }));
            fit(if has_crash { 10.0 } else { 0.1 })
        });
        // Find a random genome with a crash plus other actions.
        let genome = loop {
            let g = s.random_genome(&mut rng);
            let crashes = g
                .actions
                .iter()
                .filter(|a| matches!(a, FaultAction::Crash { .. }))
                .count();
            if crashes == 1 && g.actions.len() > 1 {
                break g;
            }
        };
        let outcome = shrink(
            &genome,
            fit(10.0),
            &mut eval,
            Objective::Sensitivity,
            10.0,
            200,
        );
        assert_eq!(outcome.genome.actions.len(), 1);
        assert!(matches!(
            outcome.genome.actions[0],
            FaultAction::Crash { .. }
        ));
        assert!(outcome.genome.byz.is_none());
    }

    #[test]
    fn shrink_respects_eval_cap() {
        let s = space();
        let mut rng = DetRng::new(78);
        let genome = s.random_genome(&mut rng);
        let mut eval = FnEvaluator::new(|_: &Genome| fit(5.0));
        let outcome = shrink(&genome, fit(5.0), &mut eval, Objective::Sensitivity, 1.0, 3);
        assert!(outcome.evals <= 3);
        assert_eq!(eval.evals, outcome.evals);
    }

    #[test]
    fn shrink_keeps_threshold() {
        let s = space();
        let mut rng = DetRng::new(79);
        for _ in 0..20 {
            let genome = s.random_genome(&mut rng);
            // Score = number of actions: shrinking below 2 actions
            // drops under the threshold and must be refused.
            let mut eval = FnEvaluator::new(|g: &Genome| fit(g.actions.len() as f64));
            let start = fit(genome.actions.len() as f64);
            if start.key(Objective::Sensitivity) < 2.0 {
                continue;
            }
            let outcome = shrink(&genome, start, &mut eval, Objective::Sensitivity, 2.0, 200);
            assert!(outcome.fitness.key(Objective::Sensitivity) >= 2.0);
            assert_eq!(outcome.genome.actions.len(), 2);
        }
    }
}
