//! The search space and genome encoding.
//!
//! A [`Genome`] is one candidate adversity configuration: a bounded
//! vector of [`FaultAction`]s plus an optional Byzantine gene. The
//! [`SearchSpace`] pins the bounds that keep the search honest and
//! comparable to the paper's adversary:
//!
//! * victims come only from the trailing non-client validator pool
//!   (ids 5..n, like [`PaperSetup::victims`](stabl::PaperSetup));
//! * at most `max_victims = t_B + 1` distinct nodes are touched across
//!   all actions *and* the Byzantine gene combined;
//! * at most `max_actions` actions per genome (3 — which also makes the
//!   "shrunk reproducers have ≤ 3 actions" corpus guarantee structural);
//! * every window mark lies on a `slots`-point time grid over the run
//!   horizon, so mutation steps are meaningful and schedules stay
//!   inside the horizon by construction
//!   ([`FaultSchedule::validate_within`] is still asserted in tests).
//!
//! Genomes are kept in a canonical form (actions sorted by start time,
//! kind, victims; victim lists sorted) so that logically equal genomes
//! serialise identically and the shrinker's output is invariant to the
//! order in which actions were generated.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};
use stabl::{Chain, FaultAction, FaultSchedule, FaultWindow, PaperSetup};
use stabl_sim::{
    ByzantineBehavior, ByzantineSpec, DetRng, LinkFault, NodeId, SimDuration, SimTime,
};

/// Millisecond ladder for slowdown extras and Byzantine delays.
const EXTRA_MS: [u64; 5] = [50, 100, 250, 500, 1000];

/// Probability ladder for link-level drop/duplicate/reorder faults.
/// Capped at 0.3: total loss is modelled by partitions, not by the
/// probabilistic link layer.
const LINK_P: [f64; 6] = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3];

/// The bounds a chain's adversary search operates under.
#[derive(Clone, Debug, PartialEq)]
pub struct SearchSpace {
    /// Network size.
    pub n: usize,
    /// Run horizon all windows must fit inside.
    pub horizon: SimTime,
    /// The allowed victims (the paper's non-client validators).
    pub pool: Vec<NodeId>,
    /// Maximum number of actions per genome.
    pub max_actions: usize,
    /// Maximum distinct nodes touched (actions + Byzantine gene).
    pub max_victims: usize,
    /// Number of grid intervals the horizon is divided into.
    pub slots: u64,
}

impl SearchSpace {
    /// The space for searching `chain` under the paper's `setup`:
    /// victims from the non-client pool, node budget `t_B + 1` (the
    /// strongest adversary the paper grants any scenario), 3 actions,
    /// a 40-slot time grid.
    pub fn paper(setup: &PaperSetup, chain: Chain) -> SearchSpace {
        let front = 5.min(setup.n);
        SearchSpace {
            n: setup.n,
            horizon: setup.horizon,
            pool: (front..setup.n).map(|i| NodeId::new(i as u32)).collect(),
            max_actions: 3,
            max_victims: chain.tolerated_faults(setup.n) + 1,
            slots: 40,
        }
    }

    /// Grid instant `slot` (of `0..=slots`): `horizon * slot / slots`.
    pub fn time(&self, slot: u64) -> SimTime {
        let micros = self.horizon.as_micros() / self.slots * slot.min(self.slots);
        SimTime::from_micros(micros)
    }

    /// A random window on the grid: start slot in `[0, slots - 1]`, end
    /// slot strictly after it, at most `slots` (= the horizon).
    pub fn random_window(&self, rng: &mut DetRng) -> FaultWindow {
        let start = rng.range_inclusive(0, self.slots - 1);
        let end = rng.range_inclusive(start + 1, self.slots);
        FaultWindow::new(self.time(start), self.time(end))
    }

    /// A random injection instant on the grid, strictly inside the run.
    pub fn random_instant(&self, rng: &mut DetRng) -> SimTime {
        self.time(rng.range_inclusive(0, self.slots - 1))
    }

    /// A random slowdown/delay extra from the ladder.
    pub fn random_extra(&self, rng: &mut DetRng) -> SimDuration {
        SimDuration::from_millis(*rng.pick(&EXTRA_MS))
    }

    /// A random link fault: global scope, drop probability from the
    /// ladder, each of duplicate/reorder added with probability 1/4.
    pub fn random_link_fault(&self, rng: &mut DetRng) -> LinkFault {
        let mut fault = LinkFault::all().with_drop(*rng.pick(&LINK_P));
        if rng.chance(0.25) {
            fault = fault.with_duplicate(*rng.pick(&LINK_P));
        }
        if rng.chance(0.25) {
            let extra = self.random_extra(rng);
            fault = fault.with_reorder(*rng.pick(&LINK_P), extra);
        }
        fault
    }

    /// Pool nodes not yet used by `genome`, in id order.
    pub fn free_nodes(&self, genome: &Genome) -> Vec<NodeId> {
        let used = genome.used_nodes();
        self.pool
            .iter()
            .copied()
            .filter(|node| !used.contains(node))
            .collect()
    }

    /// A random action drawn inside the remaining node budget of
    /// `genome`. Falls back to a (victimless) link fault when the node
    /// budget is exhausted.
    pub fn random_action(&self, genome: &Genome, rng: &mut DetRng) -> FaultAction {
        let free = self.free_nodes(genome);
        let budget = self
            .max_victims
            .saturating_sub(genome.used_nodes().len())
            .min(free.len());
        let kind = rng.next_below(5);
        if budget == 0 || kind == 4 {
            let window = self.random_window(rng);
            return FaultAction::LinkDegrade {
                fault: self.random_link_fault(rng),
                at: window.at,
                until: window.until,
            };
        }
        let count = rng.range_inclusive(1, budget as u64) as usize;
        let mut nodes: Vec<NodeId> = rng
            .sample_indices(free.len(), count)
            .into_iter()
            .map(|i| free[i])
            .collect();
        nodes.sort_unstable();
        match kind {
            0 => FaultAction::Crash {
                nodes,
                at: self.random_instant(rng),
            },
            1 => {
                let window = self.random_window(rng);
                FaultAction::Transient {
                    nodes,
                    at: window.at,
                    recover_at: window.until,
                }
            }
            2 => {
                let window = self.random_window(rng);
                FaultAction::Partition {
                    nodes,
                    at: window.at,
                    heal_at: window.until,
                }
            }
            _ => {
                let window = self.random_window(rng);
                FaultAction::Slowdown {
                    nodes,
                    extra: self.random_extra(rng),
                    at: window.at,
                    until: window.until,
                }
            }
        }
    }

    /// A random Byzantine gene over one free node, or `None` when the
    /// node budget is exhausted.
    pub fn random_byz(&self, genome: &Genome, rng: &mut DetRng) -> Option<ByzGene> {
        let free = self.free_nodes(genome);
        if free.is_empty() || genome.used_nodes().len() >= self.max_victims {
            return None;
        }
        let node = *rng.pick(&free);
        let behavior = match rng.next_below(4) {
            0 => ByzantineBehavior::Mutate,
            1 => ByzantineBehavior::Equivocate,
            2 => ByzantineBehavior::Withhold,
            _ => ByzantineBehavior::Delay(self.random_extra(rng)),
        };
        Some(ByzGene {
            nodes: vec![node],
            behavior,
        })
    }

    /// A fresh random genome: 1..=`max_actions` actions, a Byzantine
    /// gene with probability 0.3 (budget permitting), canonical order.
    pub fn random_genome(&self, rng: &mut DetRng) -> Genome {
        let mut genome = Genome {
            actions: Vec::new(),
            byz: None,
        };
        let count = rng.range_inclusive(1, self.max_actions as u64);
        for _ in 0..count {
            let action = self.random_action(&genome, rng);
            genome.actions.push(action);
        }
        if rng.chance(0.3) {
            genome.byz = self.random_byz(&genome, rng);
        }
        genome.canonicalize();
        genome
    }
}

/// The Byzantine dimension of a genome: `nodes` run under `behavior`
/// via [`ByzantineSpec`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ByzGene {
    /// The Byzantine validators.
    pub nodes: Vec<NodeId>,
    /// What they do.
    pub behavior: ByzantineBehavior,
}

/// One candidate adversity configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Genome {
    /// The fault actions, in canonical order.
    pub actions: Vec<FaultAction>,
    /// The optional Byzantine gene.
    pub byz: Option<ByzGene>,
}

impl Genome {
    /// The fault schedule this genome injects.
    pub fn schedule(&self) -> FaultSchedule {
        FaultSchedule::new(self.actions.clone())
    }

    /// The Byzantine spec this genome runs under.
    pub fn byzantine_spec(&self) -> ByzantineSpec {
        match &self.byz {
            Some(gene) => ByzantineSpec::new(gene.nodes.iter().copied(), gene.behavior),
            None => ByzantineSpec::none(),
        }
    }

    /// Every node the genome touches: action victims plus Byzantine
    /// nodes (link-fault groups reference no whole-node victims).
    pub fn used_nodes(&self) -> BTreeSet<NodeId> {
        let mut used: BTreeSet<NodeId> = self
            .actions
            .iter()
            .flat_map(|a| a.victims().iter().copied())
            .collect();
        if let Some(gene) = &self.byz {
            used.extend(gene.nodes.iter().copied());
        }
        used
    }

    /// Sorts the genome into canonical form: victims ascending within
    /// each action, actions by (start, kind rank, victims, window end),
    /// Byzantine nodes ascending. Scheduling semantics are unchanged —
    /// every action fires at its own instant — but equal genomes now
    /// compare and serialise equal regardless of generation order.
    pub fn canonicalize(&mut self) {
        for action in &mut self.actions {
            sort_victims(action);
        }
        self.actions.sort_by_key(sort_key);
        if let Some(gene) = &mut self.byz {
            gene.nodes.sort_unstable();
        }
    }

    /// `true` if the genome respects `space`'s bounds and passes
    /// schedule validation against the run horizon.
    pub fn is_valid(&self, space: &SearchSpace) -> bool {
        if self.actions.is_empty() && self.byz.is_none() {
            return false;
        }
        if self.actions.len() > space.max_actions {
            return false;
        }
        let used = self.used_nodes();
        if used.len() > space.max_victims {
            return false;
        }
        if used.iter().any(|node| !space.pool.contains(node)) {
            return false;
        }
        // Distinct victims per action are guaranteed by validate();
        // Byzantine nodes must also not double as fault victims.
        if let Some(gene) = &self.byz {
            let faulted: BTreeSet<NodeId> = self
                .actions
                .iter()
                .flat_map(|a| a.victims().iter().copied())
                .collect();
            if gene.nodes.iter().any(|node| faulted.contains(node)) {
                return false;
            }
        }
        self.schedule()
            .validate_within(space.n, space.horizon)
            .is_ok()
    }
}

fn sort_victims(action: &mut FaultAction) {
    match action {
        FaultAction::Crash { nodes, .. }
        | FaultAction::Transient { nodes, .. }
        | FaultAction::Partition { nodes, .. }
        | FaultAction::Slowdown { nodes, .. } => nodes.sort_unstable(),
        FaultAction::LinkDegrade { .. } => {}
    }
}

fn kind_rank(action: &FaultAction) -> u8 {
    match action {
        FaultAction::Crash { .. } => 0,
        FaultAction::Transient { .. } => 1,
        FaultAction::Partition { .. } => 2,
        FaultAction::Slowdown { .. } => 3,
        FaultAction::LinkDegrade { .. } => 4,
    }
}

fn sort_key(action: &FaultAction) -> (u64, u8, Vec<NodeId>, u64) {
    let end = action
        .window()
        .map(|w| w.until.as_micros())
        .unwrap_or_default();
    (
        action.start().as_micros(),
        kind_rank(action),
        action.victims().to_vec(),
        end,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> SearchSpace {
        SearchSpace::paper(&PaperSetup::quick(60, 1), Chain::Aptos)
    }

    #[test]
    fn paper_space_matches_setup() {
        let s = space();
        assert_eq!(s.n, 10);
        assert_eq!(s.pool.len(), 5);
        assert!(s.pool.iter().all(|node| node.index() >= 5));
        assert_eq!(s.max_victims, 4, "t_B + 1 for Aptos at n = 10");
        assert_eq!(s.time(0), SimTime::ZERO);
        assert_eq!(s.time(s.slots), SimTime::from_secs(60));
    }

    #[test]
    fn random_genomes_are_valid() {
        let s = space();
        let mut rng = DetRng::new(42);
        for _ in 0..200 {
            let genome = s.random_genome(&mut rng);
            assert!(genome.is_valid(&s), "invalid genome: {genome:?}");
            assert!(!genome.actions.is_empty());
            assert!(genome.actions.len() <= s.max_actions);
        }
    }

    #[test]
    fn random_genomes_are_canonical() {
        let s = space();
        let mut rng = DetRng::new(7);
        for _ in 0..100 {
            let genome = s.random_genome(&mut rng);
            let mut again = genome.clone();
            again.canonicalize();
            assert_eq!(genome, again);
        }
    }

    #[test]
    fn genome_roundtrips_through_json() {
        let s = space();
        let mut rng = DetRng::new(9);
        for _ in 0..20 {
            let genome = s.random_genome(&mut rng);
            let json = serde_json::to_string(&genome).expect("serialise");
            let back: Genome = serde_json::from_str(&json).expect("deserialise");
            assert_eq!(back, genome);
        }
    }

    #[test]
    fn byz_gene_nodes_stay_disjoint_from_victims() {
        let s = space();
        let mut rng = DetRng::new(21);
        for _ in 0..200 {
            let genome = s.random_genome(&mut rng);
            if let Some(gene) = &genome.byz {
                for node in &gene.nodes {
                    assert!(
                        !genome.actions.iter().any(|a| a.victims().contains(node)),
                        "byz node {node} doubles as a fault victim"
                    );
                }
            }
        }
    }
}
