//! The committed corpus format.
//!
//! `ext_adversary` writes one [`CorpusEntry`] per chain under
//! `results/adversary/corpus/<chain>.json`. Each entry carries
//! everything needed to re-run the discovered worst case from scratch —
//! the paper setup is rebuilt with
//! [`PaperSetup::quick`](stabl::PaperSetup::quick)`(horizon_secs, seed)`
//! and the genome replayed against the fresh baseline — so the
//! `adversary_corpus` integration test in `stabl-bench` can assert on
//! every CI run that the committed schedule still reproduces its
//! recorded fitness and still beats the paper's fixed scenarios.

use serde::{Deserialize, Serialize};

use crate::fitness::{Fitness, Objective};
use crate::genome::Genome;
use crate::search::Strategy;

/// A bootstrap confidence interval on the discovered schedule's finite
/// sensitivity score across replication seeds (absent when every
/// replicate lost liveness — an interval over ∞ is meaningless).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScoreCi {
    /// Lower 95 % bound.
    pub lo: f64,
    /// Upper 95 % bound.
    pub hi: f64,
    /// Replicates that kept liveness (the CI's sample size).
    pub finite_replicates: usize,
    /// Replicates that lost liveness.
    pub lost_replicates: usize,
}

/// One committed worst-case reproducer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CorpusEntry {
    /// Chain name ([`Chain::name`](stabl::Chain::name)).
    pub chain: String,
    /// Horizon seconds of the `PaperSetup::quick` config searched under.
    pub horizon_secs: u64,
    /// The setup's master seed (drives the runs themselves).
    pub seed: u64,
    /// The search's own seed (drives mutation/crossover draws).
    pub search_seed: u64,
    /// The strategy that found the schedule.
    pub strategy: Strategy,
    /// The objective it maximised.
    pub objective: Objective,
    /// The evaluation budget the search ran under.
    pub budget: usize,
    /// The worst fitness key among the paper's four fixed scenarios at
    /// this config (the bar the discovery had to clear).
    pub paper_worst_key: f64,
    /// The raw search winner's fitness, pre-shrink.
    pub discovered: Fitness,
    /// The shrunk reproducer.
    pub genome: Genome,
    /// The shrunk reproducer's fitness (its key stays at or above the
    /// shrink threshold by construction).
    pub fitness: Fitness,
    /// Bootstrap CI of the shrunk schedule's score across seeds.
    pub ci: Option<ScoreCi>,
    /// Total evaluations spent (search + shrink).
    pub evals: usize,
}

impl CorpusEntry {
    /// The file name this entry is committed under.
    pub fn file_name(&self) -> String {
        format!("{}.json", self.chain.to_lowercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::SearchSpace;
    use stabl::{Chain, PaperSetup};
    use stabl_sim::DetRng;

    #[test]
    fn corpus_entry_roundtrips_through_json() {
        let space = SearchSpace::paper(&PaperSetup::quick(60, 1), Chain::Algorand);
        let mut rng = DetRng::new(13);
        let genome = space.random_genome(&mut rng);
        let fitness = Fitness {
            lost_liveness: false,
            score: Some(12.5),
            improved: false,
            unresolved_frac: 0.01,
        };
        let entry = CorpusEntry {
            chain: Chain::Algorand.name().to_owned(),
            horizon_secs: 60,
            seed: 1,
            search_seed: 42,
            strategy: Strategy::Annealing,
            objective: Objective::Sensitivity,
            budget: 200,
            paper_worst_key: 10.9,
            discovered: fitness,
            genome,
            fitness,
            ci: Some(ScoreCi {
                lo: 11.0,
                hi: 14.0,
                finite_replicates: 5,
                lost_replicates: 0,
            }),
            evals: 231,
        };
        let json = serde_json::to_string(&entry).expect("serialise");
        let back: CorpusEntry = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, entry);
        assert_eq!(entry.file_name(), "algorand.json");
    }
}
