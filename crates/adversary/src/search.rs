//! Search strategies: simulated annealing and (μ+λ) population search.
//!
//! Both run behind the [`SearchStrategy`] trait under a fixed
//! evaluation budget, draw every random decision from a
//! [`DetRng`] derived from [`SearchConfig::seed`], and append one
//! [`TraceStep`] per evaluation — so the same seed replays the same
//! trace byte-for-byte (asserted by a proptest and the CI smoke job).

use serde::{Content, DeError, Deserialize, Serialize};
use stabl_sim::DetRng;

use crate::fitness::{Evaluate, Fitness, Objective};
use crate::genome::{Genome, SearchSpace};
use crate::ops::{crossover, mutate};

/// DetRng stream labels, one per strategy, so the two searches never
/// share a stream even when run from the same seed.
const ANNEALING_STREAM: u64 = 0xA11EA1;
const POPULATION_STREAM: u64 = 0x9090;

/// Which strategy to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Single-trajectory simulated annealing.
    Annealing,
    /// A small (μ+λ) evolutionary search (μ = 3, λ = 6).
    MuPlusLambda,
}

impl Strategy {
    /// Parses a `--strategy` flag value.
    pub fn parse(s: &str) -> Option<Strategy> {
        match s {
            "annealing" => Some(Strategy::Annealing),
            "mu-lambda" => Some(Strategy::MuPlusLambda),
            _ => None,
        }
    }

    /// The flag spelling.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Annealing => "annealing",
            Strategy::MuPlusLambda => "mu-lambda",
        }
    }

    /// Runs this strategy.
    pub fn search(
        &self,
        space: &SearchSpace,
        eval: &mut dyn Evaluate,
        config: &SearchConfig,
    ) -> SearchOutcome {
        match self {
            Strategy::Annealing => Annealing.search(space, eval, config),
            Strategy::MuPlusLambda => MuPlusLambda::default().search(space, eval, config),
        }
    }
}

impl Serialize for Strategy {
    fn to_content(&self) -> Content {
        Content::Str(self.name().to_owned())
    }
}

impl Deserialize for Strategy {
    fn from_content(content: &Content) -> Result<Strategy, DeError> {
        let s = String::from_content(content)?;
        Strategy::parse(&s).ok_or_else(|| DeError::custom(format!("unknown strategy {s:?}")))
    }
}

/// Parameters of one search run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Seed for the search's DetRng streams.
    pub seed: u64,
    /// Maximum number of candidate evaluations.
    pub budget: usize,
    /// What to maximise.
    pub objective: Objective,
}

/// One evaluation in the search trace.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceStep {
    /// 1-based evaluation counter.
    pub eval: usize,
    /// The candidate's fitness key under the search objective.
    pub key: f64,
    /// The best key seen so far (including this candidate).
    pub best_key: f64,
    /// Annealing: the candidate was accepted as the new current point.
    /// (μ+λ): the candidate survived selection into the next parent
    /// population.
    pub accepted: bool,
}

/// The per-evaluation log of a search (byte-identical across replays of
/// the same seed).
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct SearchTrace {
    /// One step per evaluation, in evaluation order.
    pub steps: Vec<TraceStep>,
}

/// What a search found.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// The best genome discovered.
    pub best: Genome,
    /// Its fitness.
    pub best_fitness: Fitness,
    /// Evaluations actually spent.
    pub evals: usize,
    /// The per-evaluation trace.
    pub trace: SearchTrace,
}

/// A search strategy: spend `config.budget` evaluations maximising
/// `config.objective` over `space`.
pub trait SearchStrategy {
    /// Runs the search.
    fn search(
        &self,
        space: &SearchSpace,
        eval: &mut dyn Evaluate,
        config: &SearchConfig,
    ) -> SearchOutcome;
}

/// Single-trajectory simulated annealing: propose one mutation per
/// step, always accept improvements, accept regressions with
/// probability `exp(Δkey / T)` under a geometrically cooling
/// temperature (from `T₀ = max(1, |key₀|)` down three decades across
/// the budget).
#[derive(Clone, Copy, Debug, Default)]
pub struct Annealing;

impl SearchStrategy for Annealing {
    fn search(
        &self,
        space: &SearchSpace,
        eval: &mut dyn Evaluate,
        config: &SearchConfig,
    ) -> SearchOutcome {
        let objective = config.objective;
        let mut rng = DetRng::new(config.seed).derive(ANNEALING_STREAM);
        let mut trace = SearchTrace::default();
        let current = space.random_genome(&mut rng);
        let current_fit = eval.eval(&current);
        let mut evals = 1;
        let mut best = current.clone();
        let mut best_fit = current_fit;
        trace.steps.push(TraceStep {
            eval: evals,
            key: current_fit.key(objective),
            best_key: best_fit.key(objective),
            accepted: true,
        });
        let mut current = current;
        let mut current_fit = current_fit;
        let mut temperature = current_fit.key(objective).abs().max(1.0);
        // Cool three decades over the remaining budget.
        let cooling = if config.budget > 1 {
            1e-3_f64.powf(1.0 / (config.budget - 1) as f64)
        } else {
            1.0
        };
        while evals < config.budget {
            let (candidate, _) = mutate(&current, space, &mut rng);
            let fit = eval.eval(&candidate);
            evals += 1;
            let delta = fit.key(objective) - current_fit.key(objective);
            let accepted = delta >= 0.0 || rng.chance((delta / temperature).exp());
            if fit.key(objective) > best_fit.key(objective) {
                best = candidate.clone();
                best_fit = fit;
            }
            trace.steps.push(TraceStep {
                eval: evals,
                key: fit.key(objective),
                best_key: best_fit.key(objective),
                accepted,
            });
            if accepted {
                current = candidate;
                current_fit = fit;
            }
            temperature = (temperature * cooling).max(1e-6);
        }
        SearchOutcome {
            best,
            best_fitness: best_fit,
            evals,
            trace,
        }
    }
}

/// A small (μ+λ) evolutionary search: λ children per generation from
/// crossover + mutation over μ parents, elitist truncation selection on
/// the combined population (ties resolved toward parents, so the
/// selection is deterministic).
#[derive(Clone, Copy, Debug)]
pub struct MuPlusLambda {
    /// Parent population size.
    pub mu: usize,
    /// Children per generation.
    pub lambda: usize,
}

impl Default for MuPlusLambda {
    fn default() -> MuPlusLambda {
        MuPlusLambda { mu: 3, lambda: 6 }
    }
}

impl SearchStrategy for MuPlusLambda {
    fn search(
        &self,
        space: &SearchSpace,
        eval: &mut dyn Evaluate,
        config: &SearchConfig,
    ) -> SearchOutcome {
        let objective = config.objective;
        let mu = self.mu.max(1);
        let mut rng = DetRng::new(config.seed).derive(POPULATION_STREAM);
        let mut trace = SearchTrace::default();
        let init_count = mu.min(config.budget).max(1);
        let initial: Vec<Genome> = (0..init_count)
            .map(|_| space.random_genome(&mut rng))
            .collect();
        let init_fits = eval.eval_batch(&initial);
        let mut evals = init_count;
        let mut population: Vec<(Genome, Fitness)> = initial.into_iter().zip(init_fits).collect();
        // Parents ranked best-first; stable sort keeps insertion order
        // on exact key ties.
        population.sort_by(|a, b| b.1.key(objective).total_cmp(&a.1.key(objective)));
        let mut best_key = population
            .first()
            .map(|(_, f)| f.key(objective))
            .unwrap_or_default();
        for (i, (_, fit)) in population.iter().enumerate() {
            trace.steps.push(TraceStep {
                eval: i + 1,
                key: fit.key(objective),
                best_key,
                accepted: true,
            });
        }
        while evals < config.budget {
            let brood = self.lambda.min(config.budget - evals);
            let children: Vec<Genome> = (0..brood)
                .map(|_| {
                    let parent = &population[rng.next_below(population.len() as u64) as usize].0;
                    if population.len() > 1 && rng.chance(0.5) {
                        let other = &population[rng.next_below(population.len() as u64) as usize].0;
                        let crossed = crossover(parent, other, space, &mut rng);
                        mutate(&crossed, space, &mut rng).0
                    } else {
                        mutate(parent, space, &mut rng).0
                    }
                })
                .collect();
            let child_fits = eval.eval_batch(&children);
            let child_base = evals;
            evals += children.len();
            let mut combined: Vec<(Genome, Fitness)> = population;
            combined.extend(children.iter().cloned().zip(child_fits.iter().copied()));
            // Stable: parents (earlier indices) win exact-key ties.
            combined.sort_by(|a, b| b.1.key(objective).total_cmp(&a.1.key(objective)));
            combined.truncate(mu);
            population = combined;
            best_key = best_key.max(
                population
                    .first()
                    .map(|(_, f)| f.key(objective))
                    .unwrap_or_default(),
            );
            for (i, (child, fit)) in children.iter().zip(child_fits.iter()).enumerate() {
                let survived = population.iter().any(|(g, _)| g == child);
                trace.steps.push(TraceStep {
                    eval: child_base + i + 1,
                    key: fit.key(objective),
                    best_key,
                    accepted: survived,
                });
            }
        }
        let (best, best_fitness) = population.into_iter().next().unwrap_or_else(|| {
            let g = space.random_genome(&mut rng);
            let f = eval.eval(&g);
            (g, f)
        });
        SearchOutcome {
            best,
            best_fitness,
            evals,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::SyntheticEvaluator;
    use stabl::{Chain, PaperSetup};

    fn space() -> SearchSpace {
        SearchSpace::paper(&PaperSetup::quick(60, 3), Chain::Avalanche)
    }

    fn config(budget: usize) -> SearchConfig {
        SearchConfig {
            seed: 11,
            budget,
            objective: Objective::Sensitivity,
        }
    }

    #[test]
    fn annealing_respects_budget_and_improves() {
        let s = space();
        let outcome = Annealing.search(&s, &mut SyntheticEvaluator, &config(60));
        assert_eq!(outcome.evals, 60);
        assert_eq!(outcome.trace.steps.len(), 60);
        let first = outcome.trace.steps[0].key;
        assert!(
            outcome.best_fitness.key(Objective::Sensitivity) >= first,
            "search never beat its starting point"
        );
        assert!(outcome.best.is_valid(&s));
    }

    #[test]
    fn mu_lambda_respects_budget() {
        let s = space();
        let outcome = MuPlusLambda::default().search(&s, &mut SyntheticEvaluator, &config(25));
        assert_eq!(outcome.evals, 25);
        assert_eq!(outcome.trace.steps.len(), 25);
        assert!(outcome.best.is_valid(&s));
    }

    #[test]
    fn best_key_is_monotone_in_trace() {
        let s = space();
        for strategy in [Strategy::Annealing, Strategy::MuPlusLambda] {
            let outcome = strategy.search(&s, &mut SyntheticEvaluator, &config(40));
            let mut prev = f64::MIN;
            for step in &outcome.trace.steps {
                assert!(step.best_key >= prev, "best_key regressed in {strategy:?}");
                prev = step.best_key;
            }
        }
    }

    #[test]
    fn same_seed_same_outcome() {
        let s = space();
        for strategy in [Strategy::Annealing, Strategy::MuPlusLambda] {
            let a = strategy.search(&s, &mut SyntheticEvaluator, &config(50));
            let b = strategy.search(&s, &mut SyntheticEvaluator, &config(50));
            assert_eq!(a, b, "{strategy:?} did not replay");
        }
    }

    #[test]
    fn tiny_budgets_do_not_panic() {
        let s = space();
        for strategy in [Strategy::Annealing, Strategy::MuPlusLambda] {
            for budget in 1..5 {
                let outcome = strategy.search(&s, &mut SyntheticEvaluator, &config(budget));
                assert!(outcome.evals <= budget.max(1));
            }
        }
    }

    #[test]
    fn strategy_parse_roundtrip() {
        for s in [Strategy::Annealing, Strategy::MuPlusLambda] {
            assert_eq!(Strategy::parse(s.name()), Some(s));
        }
        assert_eq!(Strategy::parse("tabu"), None);
    }
}
