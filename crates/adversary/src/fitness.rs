//! Objectives, fitness extraction and the evaluation abstraction.
//!
//! A candidate's fitness is computed from a baseline/altered
//! [`RunResult`] pair exactly the way the paper's sensitivity score is
//! ([`report_from_runs`](stabl::report_from_runs) logic): liveness loss
//! dominates every finite score, finite scores are the area between the
//! latency eCDFs. The [`Objective`] picks which aspect the search
//! maximises; [`Fitness::key`] maps a fitness to a totally ordered
//! `f64` so strategies compare candidates with `total_cmp`.

use serde::{Content, DeError, Deserialize, Serialize};
use stabl::metrics::Sensitivity;
use stabl::RunResult;

use crate::genome::Genome;

/// What the search maximises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Objective {
    /// The paper's sensitivity score, with liveness loss ranked above
    /// every finite score (the paper's ∞ bars).
    Sensitivity,
    /// The liveness-loss indicator: the fraction of submitted
    /// transactions left unresolved, plus 1 when the stall detector
    /// fired — rewards schedules that stop the chain, not ones that
    /// merely slow it.
    LivenessLoss,
}

impl Objective {
    /// Parses a `--objective` flag value.
    pub fn parse(s: &str) -> Option<Objective> {
        match s {
            "sensitivity" => Some(Objective::Sensitivity),
            "liveness-loss" => Some(Objective::LivenessLoss),
            _ => None,
        }
    }

    /// The flag spelling.
    pub fn name(&self) -> &'static str {
        match self {
            Objective::Sensitivity => "sensitivity",
            Objective::LivenessLoss => "liveness-loss",
        }
    }
}

impl Serialize for Objective {
    fn to_content(&self) -> Content {
        Content::Str(self.name().to_owned())
    }
}

impl Deserialize for Objective {
    fn from_content(content: &Content) -> Result<Objective, DeError> {
        let s = String::from_content(content)?;
        Objective::parse(&s).ok_or_else(|| DeError::custom(format!("unknown objective {s:?}")))
    }
}

/// The fitness key assigned to liveness loss under
/// [`Objective::Sensitivity`]: far above any finite score (quick-run
/// scores are < 10³), far below f64 precision loss.
pub const LIVENESS_LOSS_KEY: f64 = 1.0e9;

/// What one evaluation measured.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fitness {
    /// The altered run stopped committing (⇒ infinite sensitivity).
    pub lost_liveness: bool,
    /// The finite sensitivity score, when liveness held.
    pub score: Option<f64>,
    /// The altered run *outperformed* the baseline (the paper's striped
    /// bars) — recorded so corpus readers can spot improvements.
    pub improved: bool,
    /// Unresolved fraction of submitted transactions in the altered run.
    pub unresolved_frac: f64,
}

impl Fitness {
    /// The totally ordered comparison key under `objective` (compare
    /// with `f64::total_cmp`; every value is finite).
    pub fn key(&self, objective: Objective) -> f64 {
        match objective {
            Objective::Sensitivity => {
                if self.lost_liveness {
                    // Rank liveness violations above all finite scores,
                    // tie-broken by how much of the load got stuck.
                    LIVENESS_LOSS_KEY + self.unresolved_frac
                } else {
                    self.score.unwrap_or_default()
                }
            }
            Objective::LivenessLoss => {
                if self.lost_liveness {
                    1.0 + self.unresolved_frac
                } else {
                    self.unresolved_frac
                }
            }
        }
    }

    /// The paper-style sensitivity this fitness corresponds to.
    pub fn sensitivity(&self) -> Sensitivity {
        match (self.lost_liveness, self.score) {
            (false, Some(score)) => Sensitivity::Finite {
                score,
                improved: self.improved,
            },
            _ => Sensitivity::Infinite,
        }
    }
}

/// Extracts a [`Fitness`] from a baseline/altered run pair, mirroring
/// [`report_from_runs`](stabl::report_from_runs): liveness loss (or an
/// uncomputable altered eCDF) dominates, otherwise the score is the
/// area between the eCDFs.
pub fn fitness_of(baseline: &RunResult, altered: &RunResult) -> Fitness {
    let unresolved_frac = if altered.submitted == 0 {
        0.0
    } else {
        altered.unresolved as f64 / altered.submitted as f64
    };
    let sensitivity = if altered.lost_liveness {
        Sensitivity::Infinite
    } else {
        match (baseline.ecdf(), altered.ecdf()) {
            (Ok(b), Ok(a)) => Sensitivity::from_ecdfs(&b, &a),
            _ => Sensitivity::Infinite,
        }
    };
    match sensitivity {
        Sensitivity::Finite { score, improved } => Fitness {
            lost_liveness: false,
            score: Some(score),
            improved,
            unresolved_frac,
        },
        Sensitivity::Infinite => Fitness {
            lost_liveness: true,
            score: None,
            improved: false,
            unresolved_frac,
        },
    }
}

/// How search strategies and the shrinker evaluate candidates. The real
/// implementation (in `stabl-bench`) runs each genome through the
/// campaign engine pool/cache against a fixed baseline; tests use
/// [`SyntheticEvaluator`]/[`FnEvaluator`] to stay fast.
pub trait Evaluate {
    /// Evaluates a batch of genomes, one fitness per genome, in order.
    /// Strategies batch where they can ((μ+λ) generations) so the
    /// engine pool runs candidates in parallel.
    fn eval_batch(&mut self, genomes: &[Genome]) -> Vec<Fitness>;

    /// Evaluates one genome.
    fn eval(&mut self, genome: &Genome) -> Fitness {
        self.eval_batch(std::slice::from_ref(genome))
            .into_iter()
            .next()
            .unwrap_or(Fitness {
                lost_liveness: false,
                score: None,
                improved: false,
                unresolved_frac: 0.0,
            })
    }
}

/// A deterministic, simulation-free evaluator for tests and smoke runs:
/// the fitness is a structural function of the genome (action kinds,
/// victim counts, window lengths), so searches replay byte-identically
/// without running any chain.
#[derive(Clone, Copy, Debug, Default)]
pub struct SyntheticEvaluator;

impl Evaluate for SyntheticEvaluator {
    fn eval_batch(&mut self, genomes: &[Genome]) -> Vec<Fitness> {
        genomes.iter().map(synthetic_fitness).collect()
    }
}

fn synthetic_fitness(genome: &Genome) -> Fitness {
    use stabl::FaultAction;
    let mut score = 0.0;
    for action in &genome.actions {
        let weight = match action {
            FaultAction::Crash { .. } => 3.0,
            FaultAction::Partition { .. } => 2.5,
            FaultAction::Transient { .. } => 2.0,
            FaultAction::Slowdown { .. } => 1.0,
            FaultAction::LinkDegrade { .. } => 0.5,
        };
        let window_secs = action
            .window()
            .map(|w| w.duration().as_micros() as f64 / 1e6)
            .unwrap_or(10.0);
        score += weight * (action.victims().len() as f64).max(1.0) + 0.01 * window_secs;
    }
    if genome.byz.is_some() {
        score += 1.5;
    }
    Fitness {
        lost_liveness: false,
        score: Some(score),
        improved: false,
        unresolved_frac: 0.0,
    }
}

/// An evaluator wrapping a plain function — lets tests pin arbitrary
/// fitness landscapes (e.g. "high iff the genome contains this exact
/// action" for the shrink fixture).
pub struct FnEvaluator<F: FnMut(&Genome) -> Fitness> {
    f: F,
    /// Evaluations performed so far.
    pub evals: usize,
}

impl<F: FnMut(&Genome) -> Fitness> FnEvaluator<F> {
    /// Wraps `f`.
    pub fn new(f: F) -> FnEvaluator<F> {
        FnEvaluator { f, evals: 0 }
    }
}

impl<F: FnMut(&Genome) -> Fitness> Evaluate for FnEvaluator<F> {
    fn eval_batch(&mut self, genomes: &[Genome]) -> Vec<Fitness> {
        self.evals += genomes.len();
        genomes.iter().map(&mut self.f).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabl::{Chain, PaperSetup};
    use stabl_sim::DetRng;

    #[test]
    fn objective_parse_roundtrip() {
        for obj in [Objective::Sensitivity, Objective::LivenessLoss] {
            assert_eq!(Objective::parse(obj.name()), Some(obj));
        }
        assert_eq!(Objective::parse("chaos"), None);
    }

    #[test]
    fn liveness_loss_dominates_sensitivity_key() {
        let lost = Fitness {
            lost_liveness: true,
            score: None,
            improved: false,
            unresolved_frac: 0.4,
        };
        let finite = Fitness {
            lost_liveness: false,
            score: Some(950.0),
            improved: false,
            unresolved_frac: 0.0,
        };
        assert!(lost.key(Objective::Sensitivity) > finite.key(Objective::Sensitivity));
        assert!(lost.key(Objective::LivenessLoss) > finite.key(Objective::LivenessLoss));
        // Among two liveness losses, the one that stuck more load wins.
        let worse = Fitness {
            unresolved_frac: 0.9,
            ..lost
        };
        assert!(worse.key(Objective::Sensitivity) > lost.key(Objective::Sensitivity));
    }

    #[test]
    fn synthetic_evaluator_is_deterministic() {
        let space = crate::genome::SearchSpace::paper(&PaperSetup::quick(30, 1), Chain::Solana);
        let mut rng = DetRng::new(3);
        let genome = space.random_genome(&mut rng);
        let mut eval = SyntheticEvaluator;
        assert_eq!(eval.eval(&genome), eval.eval(&genome));
    }
}
