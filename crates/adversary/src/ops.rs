//! Typed mutation operators and one-point crossover.
//!
//! Every operator is a *pure function* of its inputs and the
//! [`DetRng`] stream: the same genome, space and generator state always
//! produce the same child (asserted by the crate's proptests). When the
//! drawn operator does not apply to the genome at hand (e.g. removing
//! an action from a single-action genome), the next operator in a fixed
//! rotation is tried instead — no rng draws are wasted, so the stream
//! stays aligned across replays.

use stabl::{FaultAction, FaultWindow};
use stabl_sim::{DetRng, NodeId};

use crate::genome::{Genome, SearchSpace};

/// The mutation operators the search draws from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutationOp {
    /// Re-draw one action's window (or a crash's instant) on the grid.
    PerturbWindow,
    /// Append a fresh random action (budget permitting).
    AddAction,
    /// Drop one action (genomes keep at least one).
    RemoveAction,
    /// Replace one victim with a currently unused pool node.
    SwapVictims,
    /// Add an unused pool node to one action's victim set.
    WidenScope,
    /// Remove one victim from a multi-victim action.
    NarrowScope,
    /// Add a Byzantine gene if absent, remove it if present.
    ToggleByzantine,
}

impl MutationOp {
    /// All operators, in rotation order.
    pub const ALL: [MutationOp; 7] = [
        MutationOp::PerturbWindow,
        MutationOp::AddAction,
        MutationOp::RemoveAction,
        MutationOp::SwapVictims,
        MutationOp::WidenScope,
        MutationOp::NarrowScope,
        MutationOp::ToggleByzantine,
    ];
}

/// Applies one randomly drawn mutation operator to `genome`. The result
/// is canonical and valid for `space`. Returns the applied operator
/// alongside the child.
pub fn mutate(genome: &Genome, space: &SearchSpace, rng: &mut DetRng) -> (Genome, MutationOp) {
    let first = rng.next_below(MutationOp::ALL.len() as u64) as usize;
    for offset in 0..MutationOp::ALL.len() {
        let op = MutationOp::ALL[(first + offset) % MutationOp::ALL.len()];
        if let Some(mut child) = try_op(genome, space, rng, op) {
            child.canonicalize();
            debug_assert!(child.is_valid(space), "mutation {op:?} broke {child:?}");
            return (child, op);
        }
    }
    // Every operator was inapplicable — only possible for degenerate
    // spaces (empty pool AND full action list AND single-victim
    // actions). Return the genome unchanged rather than panic.
    ((*genome).clone(), MutationOp::PerturbWindow)
}

fn try_op(
    genome: &Genome,
    space: &SearchSpace,
    rng: &mut DetRng,
    op: MutationOp,
) -> Option<Genome> {
    match op {
        MutationOp::PerturbWindow => {
            if genome.actions.is_empty() {
                return None;
            }
            let mut child = genome.clone();
            let idx = rng.next_below(child.actions.len() as u64) as usize;
            let action = child.actions[idx].clone();
            child.actions[idx] = match action.window() {
                Some(_) => action.with_window(space.random_window(rng)),
                None => {
                    action.with_window(FaultWindow::new(space.random_instant(rng), space.horizon))
                }
            };
            Some(child)
        }
        MutationOp::AddAction => {
            if genome.actions.len() >= space.max_actions {
                return None;
            }
            let mut child = genome.clone();
            let action = space.random_action(&child, rng);
            child.actions.push(action);
            Some(child)
        }
        MutationOp::RemoveAction => {
            if genome.actions.len() <= 1 {
                return None;
            }
            let mut child = genome.clone();
            let idx = rng.next_below(child.actions.len() as u64) as usize;
            child.actions.remove(idx);
            Some(child)
        }
        MutationOp::SwapVictims => {
            let free = space.free_nodes(genome);
            if free.is_empty() {
                return None;
            }
            let targets = victim_actions(genome, 1);
            if targets.is_empty() {
                return None;
            }
            let mut child = genome.clone();
            let idx = *rng.pick(&targets);
            let replacement = *rng.pick(&free);
            let victims = victims_mut(&mut child.actions[idx])?;
            let slot = rng.next_below(victims.len() as u64) as usize;
            victims[slot] = replacement;
            Some(child)
        }
        MutationOp::WidenScope => {
            if genome.used_nodes().len() >= space.max_victims {
                return None;
            }
            let free = space.free_nodes(genome);
            if free.is_empty() {
                return None;
            }
            let targets = victim_actions(genome, 1);
            if targets.is_empty() {
                return None;
            }
            let mut child = genome.clone();
            let idx = *rng.pick(&targets);
            let extra = *rng.pick(&free);
            victims_mut(&mut child.actions[idx])?.push(extra);
            Some(child)
        }
        MutationOp::NarrowScope => {
            let targets = victim_actions(genome, 2);
            if targets.is_empty() {
                return None;
            }
            let mut child = genome.clone();
            let idx = *rng.pick(&targets);
            let victims = victims_mut(&mut child.actions[idx])?;
            let slot = rng.next_below(victims.len() as u64) as usize;
            victims.remove(slot);
            Some(child)
        }
        MutationOp::ToggleByzantine => match genome.byz {
            Some(_) => {
                if genome.actions.is_empty() {
                    return None;
                }
                let mut child = genome.clone();
                child.byz = None;
                Some(child)
            }
            None => {
                let mut child = genome.clone();
                child.byz = space.random_byz(&child, rng);
                child.byz.is_some().then_some(child)
            }
        },
    }
}

/// Indices of actions with at least `min_victims` whole-node victims.
fn victim_actions(genome: &Genome, min_victims: usize) -> Vec<usize> {
    genome
        .actions
        .iter()
        .enumerate()
        .filter(|(_, a)| a.victims().len() >= min_victims)
        .map(|(i, _)| i)
        .collect()
}

fn victims_mut(action: &mut FaultAction) -> Option<&mut Vec<NodeId>> {
    match action {
        FaultAction::Crash { nodes, .. }
        | FaultAction::Transient { nodes, .. }
        | FaultAction::Partition { nodes, .. }
        | FaultAction::Slowdown { nodes, .. } => Some(nodes),
        FaultAction::LinkDegrade { .. } => None,
    }
}

/// One-point crossover: the child takes a prefix of `a`'s actions and a
/// suffix of `b`'s, then is repaired to respect the space's bounds
/// (overlapping victims and over-budget actions from the suffix are
/// dropped, the action count is capped, the Byzantine gene is inherited
/// from a random parent when it still fits).
pub fn crossover(a: &Genome, b: &Genome, space: &SearchSpace, rng: &mut DetRng) -> Genome {
    let cut_a = rng.range_inclusive(0, a.actions.len() as u64) as usize;
    let cut_b = rng.range_inclusive(0, b.actions.len() as u64) as usize;
    let from_a = a.actions[..cut_a].iter().cloned();
    let from_b = b.actions[cut_b..].iter().cloned();
    let mut child = Genome {
        actions: Vec::new(),
        byz: None,
    };
    for action in from_a.chain(from_b) {
        if child.actions.len() >= space.max_actions {
            break;
        }
        let used = child.used_nodes();
        let disjoint = action.victims().iter().all(|node| !used.contains(node));
        let within_budget = used.len() + action.victims().len() <= space.max_victims;
        if disjoint && within_budget {
            child.actions.push(action);
        }
    }
    let byz_parent = if rng.chance(0.5) { &a.byz } else { &b.byz };
    if let Some(gene) = byz_parent {
        let used = child.used_nodes();
        let disjoint = gene.nodes.iter().all(|node| !used.contains(node));
        if disjoint && used.len() + gene.nodes.len() <= space.max_victims {
            child.byz = Some(gene.clone());
        }
    }
    if child.actions.is_empty() && child.byz.is_none() {
        // Degenerate cut on two incompatible parents: fall back to a
        // fresh draw so the population never carries empty genomes.
        return space.random_genome(rng);
    }
    if child.actions.is_empty() {
        // A Byzantine-only child cannot be shrunk or replayed as a
        // schedule; give it one action to anchor it.
        let action = space.random_action(&child, rng);
        child.actions.push(action);
    }
    child.canonicalize();
    child
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabl::{Chain, PaperSetup};

    fn space() -> SearchSpace {
        SearchSpace::paper(&PaperSetup::quick(60, 1), Chain::Redbelly)
    }

    #[test]
    fn mutation_preserves_validity() {
        let s = space();
        let mut rng = DetRng::new(5);
        let mut genome = s.random_genome(&mut rng);
        for _ in 0..500 {
            let (child, _) = mutate(&genome, &s, &mut rng);
            assert!(child.is_valid(&s), "invalid child: {child:?}");
            genome = child;
        }
    }

    #[test]
    fn mutation_visits_every_operator() {
        let s = space();
        let mut rng = DetRng::new(6);
        let mut genome = s.random_genome(&mut rng);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let (child, op) = mutate(&genome, &s, &mut rng);
            seen.insert(format!("{op:?}"));
            genome = child;
        }
        assert_eq!(seen.len(), MutationOp::ALL.len(), "unreached ops: {seen:?}");
    }

    #[test]
    fn crossover_preserves_validity() {
        let s = space();
        let mut rng = DetRng::new(8);
        for _ in 0..200 {
            let a = s.random_genome(&mut rng);
            let b = s.random_genome(&mut rng);
            let child = crossover(&a, &b, &s, &mut rng);
            assert!(child.is_valid(&s), "invalid child: {child:?}");
        }
    }
}
