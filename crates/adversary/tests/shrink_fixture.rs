//! The known-bad fixture shrink: a hand-written, deliberately noisy
//! schedule must reduce to its one load-bearing action in its minimal
//! form. CI runs this as part of the `adversary-smoke` job.

use stabl::{FaultAction, PaperSetup};
use stabl_sim::{ByzantineBehavior, LinkFault, NodeId, SimDuration, SimTime};

use stabl_adversary::{shrink, ByzGene, Fitness, FnEvaluator, Genome, Objective};

fn secs(s: f64) -> SimTime {
    SimTime::from_micros((s * 1e6) as u64)
}

/// The fitness landscape: the run "loses liveness" exactly when some
/// partition isolates node 8 across t = 30 s. Everything else in the
/// schedule is noise the shrinker must strip.
fn landscape(genome: &Genome) -> Fitness {
    let bad = genome.actions.iter().any(|action| match action {
        FaultAction::Partition { nodes, at, heal_at } => {
            nodes.contains(&NodeId::new(8)) && *at <= secs(30.0) && secs(30.0) < *heal_at
        }
        _ => false,
    });
    Fitness {
        lost_liveness: bad,
        score: if bad { None } else { Some(0.2) },
        improved: false,
        unresolved_frac: if bad { 0.5 } else { 0.0 },
    }
}

#[test]
fn known_bad_fixture_shrinks_to_minimal_form() {
    // Three actions plus a Byzantine gene; only the partition matters.
    let fixture = Genome {
        actions: vec![
            FaultAction::LinkDegrade {
                fault: LinkFault::all().with_drop(0.05),
                at: SimTime::ZERO,
                until: secs(60.0),
            },
            FaultAction::Partition {
                nodes: vec![NodeId::new(8), NodeId::new(9)],
                at: secs(20.0),
                heal_at: secs(40.0),
            },
            FaultAction::Slowdown {
                nodes: vec![NodeId::new(7)],
                extra: SimDuration::from_millis(250),
                at: secs(10.0),
                until: secs(50.0),
            },
        ],
        byz: Some(ByzGene {
            nodes: vec![NodeId::new(6)],
            behavior: ByzantineBehavior::Withhold,
        }),
    };
    // Sanity: the fixture really is "bad", and fits the quick-60 paper
    // setup it claims to run under.
    let start = landscape(&fixture);
    assert!(start.lost_liveness);
    let setup = PaperSetup::quick(60, 1);
    fixture
        .schedule()
        .validate_within(setup.n, setup.horizon)
        .expect("fixture schedule is valid");

    let min_key = 1.0e9; // liveness-loss floor under Objective::Sensitivity
    let mut eval = FnEvaluator::new(landscape);
    let outcome = shrink(
        &fixture,
        start,
        &mut eval,
        Objective::Sensitivity,
        min_key,
        100,
    );

    // The minimal form: one partition, one victim, window bisected down
    // to the smallest grid-free interval still covering t = 30 s.
    assert_eq!(
        outcome.genome,
        Genome {
            actions: vec![FaultAction::Partition {
                nodes: vec![NodeId::new(8)],
                at: secs(30.0),
                heal_at: secs(30.625),
            }],
            byz: None,
        },
        "shrunk form drifted: {:?}",
        outcome.genome
    );
    assert!(outcome.fitness.lost_liveness);
    assert!(outcome.evals <= 30, "shrink spent {} evals", outcome.evals);
    assert_eq!(eval.evals, outcome.evals);
}
