//! Determinism property tests for the adversary search.
//!
//! Three load-bearing properties:
//!
//! 1. the genome operators (mutation, crossover) are pure functions of
//!    the `DetRng` stream — same inputs and generator state, same child;
//! 2. a full search run (either strategy, synthetic evaluator) replays
//!    byte-identically from the same seed, down to the serialised
//!    outcome and trace;
//! 3. the shrinker's output is invariant to the order the input
//!    genome's actions are listed in.

use proptest::prelude::*;

use stabl::{Chain, PaperSetup};
use stabl_adversary::{
    crossover, mutate, shrink, Fitness, FnEvaluator, Genome, Objective, SearchConfig, SearchSpace,
    Strategy, SyntheticEvaluator,
};
use stabl_sim::DetRng;

fn space_for(chain_idx: usize, horizon: u64) -> SearchSpace {
    let chain = Chain::ALL[chain_idx % Chain::ALL.len()];
    SearchSpace::paper(&PaperSetup::quick(horizon, 1), chain)
}

proptest! {
    /// Mutation is a pure function of (genome, space, rng state).
    #[test]
    fn mutation_is_pure(seed in 0u64..1_000_000, chain in 0usize..5, steps in 1usize..30) {
        let space = space_for(chain, 60);
        let mut rng_a = DetRng::new(seed).derive(1);
        let mut rng_b = DetRng::new(seed).derive(1);
        let mut genome_a = space.random_genome(&mut rng_a);
        let mut genome_b = space.random_genome(&mut rng_b);
        prop_assert_eq!(&genome_a, &genome_b);
        for _ in 0..steps {
            let (child_a, op_a) = mutate(&genome_a, &space, &mut rng_a);
            let (child_b, op_b) = mutate(&genome_b, &space, &mut rng_b);
            prop_assert_eq!(op_a, op_b);
            prop_assert_eq!(&child_a, &child_b);
            // The generators advanced identically: their next draws agree.
            prop_assert_eq!(rng_a.next_u64(), rng_b.next_u64());
            genome_a = child_a;
            genome_b = child_b;
        }
    }

    /// Crossover is a pure function of (parents, space, rng state).
    #[test]
    fn crossover_is_pure(seed in 0u64..1_000_000, chain in 0usize..5) {
        let space = space_for(chain, 60);
        let mut setup = DetRng::new(seed).derive(2);
        let a = space.random_genome(&mut setup);
        let b = space.random_genome(&mut setup);
        let mut rng_x = setup.clone();
        let mut rng_y = setup.clone();
        let child_x = crossover(&a, &b, &space, &mut rng_x);
        let child_y = crossover(&a, &b, &space, &mut rng_y);
        prop_assert_eq!(&child_x, &child_y);
        prop_assert_eq!(rng_x.next_u64(), rng_y.next_u64());
    }

    /// A full search replays byte-identically from the same seed: the
    /// serialised outcome (best genome, fitness, full trace) is equal
    /// as a string.
    #[test]
    fn search_replays_byte_identically(
        seed in 0u64..1_000_000,
        chain in 0usize..5,
        budget in 5usize..60,
        strategy_idx in 0usize..2,
    ) {
        let space = space_for(chain, 60);
        let strategy = [Strategy::Annealing, Strategy::MuPlusLambda][strategy_idx];
        let config = SearchConfig { seed, budget, objective: Objective::Sensitivity };
        let first = strategy.search(&space, &mut SyntheticEvaluator, &config);
        let second = strategy.search(&space, &mut SyntheticEvaluator, &config);
        let json_first = serde_json::to_string(&first)
            .map_err(|e| TestCaseError::fail(format!("serialise: {e}")))?;
        let json_second = serde_json::to_string(&second)
            .map_err(|e| TestCaseError::fail(format!("serialise: {e}")))?;
        prop_assert_eq!(json_first, json_second);
    }

    /// Shrink output is invariant to the order of the input genome's
    /// actions: shuffling the action list changes nothing because the
    /// shrinker canonicalises before reducing.
    #[test]
    fn shrink_is_order_invariant(
        seed in 0u64..1_000_000,
        chain in 0usize..5,
        shuffle_seed in 0u64..1_000,
    ) {
        let space = space_for(chain, 60);
        let mut rng = DetRng::new(seed).derive(3);
        let genome = space.random_genome(&mut rng);

        let mut shuffled = genome.clone();
        DetRng::new(shuffle_seed).shuffle(&mut shuffled.actions);

        // A deterministic, order-insensitive fitness landscape.
        let landscape = |g: &Genome| -> Fitness {
            let mut canon = g.clone();
            canon.canonicalize();
            let score = canon
                .actions
                .iter()
                .map(|a| a.victims().len() as f64 + 1.0)
                .sum::<f64>();
            Fitness { lost_liveness: false, score: Some(score), improved: false, unresolved_frac: 0.0 }
        };
        let start = landscape(&genome);
        let min_key = start.key(Objective::Sensitivity) * 0.5;

        let mut eval_a = FnEvaluator::new(landscape);
        let mut eval_b = FnEvaluator::new(landscape);
        let out_a = shrink(&genome, start, &mut eval_a, Objective::Sensitivity, min_key, 200);
        let out_b = shrink(&shuffled, start, &mut eval_b, Objective::Sensitivity, min_key, 200);
        prop_assert_eq!(out_a, out_b);
    }
}
