//! Configuration of the simulated Solana validator.

use stabl_sim::SimDuration;

use crate::EpochSchedule;

/// Tunables of the slot clock, leader pipeline, voting/rooting and
/// Epoch-Accounts-Hash machinery of a simulated Solana validator.
///
/// Defaults model Solana v1.18.1 booted by the repository deployment
/// scripts (warmup epochs enabled) on the paper's testbed.
#[derive(Clone, Debug)]
pub struct SolanaConfig {
    /// Slot duration (mainnet: 400 ms).
    pub slot_duration: SimDuration,
    /// Epoch schedule (warmup by default — the precondition of the EAH
    /// panic the paper hit).
    pub schedule: EpochSchedule,
    /// Seed of the leader schedule.
    pub leader_seed: u64,
    /// How many upcoming leaders (beyond the current slot's) receive
    /// forwarded transactions.
    pub forward_lookahead: u64,
    /// Maximum transactions a leader packs into one slot's block (the
    /// banking-stage compute budget of a 4-vCPU validator; well above
    /// the 80 tx/slot baseline load but tight enough that dead-leader
    /// backlogs take several slots to drain).
    pub max_block_txs: usize,
    /// Maximum pending transactions re-forwarded per slot by one RPC
    /// node's outbox.
    pub resend_batch: usize,
    /// Outbox capacity per node.
    pub outbox_capacity: usize,
    /// Votes required to confirm a block (2/3 supermajority of 10 → 7).
    pub vote_quorum_permille: u32,
    /// How many slots behind the highest confirmed block the root trails
    /// (freeze-to-root distance).
    pub root_lag_slots: u64,
    /// Execution cost per transaction applied from a confirmed block.
    pub exec_per_tx: SimDuration,
    /// Per-validator stakes; `None` means uniform (the paper's testbed).
    /// Leader slots and vote quorums are stake-weighted.
    pub stakes: Option<Vec<u64>>,
    /// Models production-shaped contention: funds the whole declared
    /// account population lazily instead of the paper's 256 prefunded
    /// accounts. Off by default so paper-standard runs are
    /// byte-identical.
    pub model_contention: bool,
}

impl Default for SolanaConfig {
    fn default() -> Self {
        SolanaConfig {
            slot_duration: SimDuration::from_millis(400),
            schedule: EpochSchedule::warmup(),
            leader_seed: 0x0050_1a7a_5eed,
            forward_lookahead: 2,
            max_block_txs: 120,
            resend_batch: 1_000,
            outbox_capacity: 200_000,
            vote_quorum_permille: 667,
            root_lag_slots: 8,
            exec_per_tx: SimDuration::from_micros(100),
            stakes: None,
            model_contention: false,
        }
    }
}

impl SolanaConfig {
    /// Votes required to confirm a block in an `n`-validator network
    /// (uniform-stake form).
    pub fn vote_quorum(&self, n: usize) -> usize {
        (n * self.vote_quorum_permille as usize) / 1000 + 1
    }

    /// The per-validator stakes in force for an `n`-validator network.
    ///
    /// # Panics
    ///
    /// Panics if explicit stakes were configured with the wrong length.
    pub fn stakes_for(&self, n: usize) -> Vec<u64> {
        match &self.stakes {
            Some(stakes) => {
                assert_eq!(stakes.len(), n, "stakes must cover every validator");
                stakes.clone()
            }
            None => vec![1; n],
        }
    }

    /// Stake required for a supermajority, given `total` stake.
    pub fn stake_quorum(&self, total: u64) -> u64 {
        total * self.vote_quorum_permille as u64 / 1000 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_consistent() {
        let cfg = SolanaConfig::default();
        assert_eq!(cfg.vote_quorum(10), 7, "2/3 supermajority of ten");
        assert_eq!(cfg.vote_quorum(4), 3);
        // The root must be able to enter an epoch before its EAH start
        // check even in the shortest warmup epoch (32 slots, check at
        // one quarter = 8 slots).
        assert!(cfg.root_lag_slots <= cfg.schedule.slots_in_epoch(0) / 4);
        assert!(cfg.forward_lookahead >= 1);
    }
}

impl SolanaConfig {
    /// Pairs this config with a Byzantine spec, producing the config of
    /// [`ByzantineSolanaNode`](crate::ByzantineSolanaNode): the named
    /// nodes run the same protocol but mutate, equivocate, delay or
    /// withhold their outbound messages.
    pub fn with_byzantine(
        self,
        spec: stabl_sim::ByzantineSpec,
    ) -> stabl_sim::ByzConfig<SolanaConfig> {
        stabl_sim::ByzConfig::new(self, spec)
    }
}
