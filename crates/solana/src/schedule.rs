//! Slot/epoch accounting and the stake-weighted leader schedule.
//!
//! Solana divides time into fixed-duration *slots*, each assigned to one
//! leader, grouped into *epochs*. With `--enable-warmup-epochs` (the
//! default of the deployment scripts the paper used), epoch 0 has 32
//! slots and each following epoch doubles until the normal length (8192)
//! is reached — the paper traces the Epoch-Accounts-Hash panic to a
//! transient failure landing in one of these short warmup epochs (§5).
//!
//! The leader schedule is a deterministic pseudo-random function of the
//! epoch (computed two epochs in advance on the real chain); with the
//! testbed's uniform stake every validator is equally likely per slot.

use stabl_sim::NodeId;
use stabl_types::Sha256;

/// Slot/epoch arithmetic for a (possibly warmup-enabled) schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochSchedule {
    first_epoch_slots: u64,
    max_epoch_slots: u64,
}

impl EpochSchedule {
    /// The warmup schedule used by Solana's development deployments:
    /// 32-slot epoch 0, doubling to 8192.
    pub fn warmup() -> EpochSchedule {
        EpochSchedule {
            first_epoch_slots: 32,
            max_epoch_slots: 8192,
        }
    }

    /// A constant-length schedule (no warmup).
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn constant(slots: u64) -> EpochSchedule {
        assert!(slots > 0, "epochs need at least one slot");
        EpochSchedule {
            first_epoch_slots: slots,
            max_epoch_slots: slots,
        }
    }

    /// Number of slots in `epoch`.
    pub fn slots_in_epoch(&self, epoch: u64) -> u64 {
        let doubled = u32::try_from(epoch)
            .ok()
            .and_then(|shift| self.first_epoch_slots.checked_shl(shift))
            .unwrap_or(u64::MAX);
        doubled.min(self.max_epoch_slots)
    }

    /// First slot of `epoch`.
    pub fn first_slot(&self, epoch: u64) -> u64 {
        let mut slot = 0;
        for e in 0..epoch {
            slot += self.slots_in_epoch(e);
        }
        slot
    }

    /// The epoch containing `slot`.
    pub fn epoch_of(&self, slot: u64) -> u64 {
        let mut epoch = 0;
        let mut start = 0;
        loop {
            let len = self.slots_in_epoch(epoch);
            if slot < start + len {
                return epoch;
            }
            start += len;
            epoch += 1;
        }
    }

    /// The slot at which the Epoch-Accounts-Hash calculation of `epoch`
    /// must *start* (one quarter in).
    pub fn eah_start_slot(&self, epoch: u64) -> u64 {
        self.first_slot(epoch) + self.slots_in_epoch(epoch) / 4
    }

    /// The slot at which the EAH must be integrated into the bank hash
    /// (three quarters in) — the `wait_get_epoch_accounts_hash` point.
    pub fn eah_stop_slot(&self, epoch: u64) -> u64 {
        self.first_slot(epoch) + self.slots_in_epoch(epoch) * 3 / 4
    }
}

/// The leader of `slot` in an `n`-validator network (uniform stake).
pub fn leader_for(seed: u64, schedule: &EpochSchedule, slot: u64, n: usize) -> NodeId {
    leader_for_weighted(seed, schedule, slot, &vec![1; n])
}

/// The leader of `slot` with stake-proportional selection: validator `i`
/// leads with probability `stakes[i] / Σ stakes`.
///
/// # Panics
///
/// Panics if `stakes` is empty or sums to zero.
pub fn leader_for_weighted(
    seed: u64,
    schedule: &EpochSchedule,
    slot: u64,
    stakes: &[u64],
) -> NodeId {
    let total: u64 = stakes.iter().sum();
    assert!(total > 0, "total stake must be positive");
    let epoch = schedule.epoch_of(slot);
    let mut hasher = Sha256::new();
    hasher.update(b"solana-leader-schedule-v1");
    hasher.update(&seed.to_be_bytes());
    hasher.update(&epoch.to_be_bytes());
    hasher.update(&slot.to_be_bytes());
    let mut draw = hasher.finalize().prefix_u64() % total;
    for (i, stake) in stakes.iter().enumerate() {
        if draw < *stake {
            return NodeId::new(i as u32);
        }
        draw -= stake;
    }
    unreachable!("draw is below the total stake")
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// `epoch_of` inverts the epoch boundaries for arbitrary slots.
        #[test]
        fn epoch_of_is_consistent(slot in 0u64..2_000_000) {
            let s = EpochSchedule::warmup();
            let epoch = s.epoch_of(slot);
            prop_assert!(s.first_slot(epoch) <= slot);
            prop_assert!(slot < s.first_slot(epoch) + s.slots_in_epoch(epoch));
        }

        /// EAH windows are strictly inside their epoch for any schedule.
        #[test]
        fn eah_windows_inside_epoch(first in 4u64..512, epoch in 0u64..12) {
            let s = EpochSchedule { first_epoch_slots: first, max_epoch_slots: 8192.max(first) };
            prop_assert!(s.eah_start_slot(epoch) >= s.first_slot(epoch));
            prop_assert!(s.eah_start_slot(epoch) < s.eah_stop_slot(epoch));
            prop_assert!(s.eah_stop_slot(epoch) < s.first_slot(epoch + 1));
        }

        /// The weighted schedule only ever picks staked validators.
        #[test]
        fn weighted_leader_has_stake(
            slot in 0u64..100_000,
            stakes in proptest::collection::vec(0u64..8, 1..12),
        ) {
            prop_assume!(stakes.iter().sum::<u64>() > 0);
            let s = EpochSchedule::warmup();
            let leader = leader_for_weighted(3, &s, slot, &stakes);
            prop_assert!(stakes[leader.index()] > 0, "zero-stake node led");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_doubles_to_cap() {
        let s = EpochSchedule::warmup();
        assert_eq!(s.slots_in_epoch(0), 32);
        assert_eq!(s.slots_in_epoch(1), 64);
        assert_eq!(s.slots_in_epoch(4), 512);
        assert_eq!(s.slots_in_epoch(8), 8192);
        assert_eq!(s.slots_in_epoch(20), 8192, "cap holds");
    }

    #[test]
    fn first_slot_accumulates() {
        let s = EpochSchedule::warmup();
        assert_eq!(s.first_slot(0), 0);
        assert_eq!(s.first_slot(1), 32);
        assert_eq!(s.first_slot(2), 96);
        assert_eq!(s.first_slot(3), 224);
        assert_eq!(s.first_slot(4), 480);
    }

    #[test]
    fn epoch_of_inverts_first_slot() {
        let s = EpochSchedule::warmup();
        for epoch in 0..10 {
            let start = s.first_slot(epoch);
            assert_eq!(s.epoch_of(start), epoch);
            assert_eq!(s.epoch_of(start + s.slots_in_epoch(epoch) - 1), epoch);
        }
    }

    #[test]
    fn eah_windows_sit_inside_the_epoch() {
        let s = EpochSchedule::warmup();
        for epoch in 0..8 {
            let start = s.eah_start_slot(epoch);
            let stop = s.eah_stop_slot(epoch);
            assert!(start >= s.first_slot(epoch));
            assert!(start < stop);
            assert!(stop < s.first_slot(epoch + 1));
        }
    }

    #[test]
    fn constant_schedule_is_flat() {
        let s = EpochSchedule::constant(100);
        assert_eq!(s.slots_in_epoch(0), 100);
        assert_eq!(s.slots_in_epoch(7), 100);
        assert_eq!(s.first_slot(3), 300);
        assert_eq!(s.epoch_of(299), 2);
    }

    #[test]
    fn weighted_schedule_tracks_stake() {
        let s = EpochSchedule::warmup();
        // One whale with 50% of the stake among 5 validators.
        let stakes = [4u64, 1, 1, 1, 1];
        let mut counts = [0u32; 5];
        for slot in 0..8000 {
            counts[leader_for_weighted(7, &s, slot, &stakes).index()] += 1;
        }
        let whale_share = counts[0] as f64 / 8000.0;
        assert!((whale_share - 0.5).abs() < 0.03, "whale led {whale_share}");
        for c in &counts[1..] {
            let share = *c as f64 / 8000.0;
            assert!((share - 0.125).abs() < 0.02, "minnow led {share}");
        }
    }

    #[test]
    #[should_panic(expected = "total stake")]
    fn zero_stake_rejected() {
        let _ = leader_for_weighted(7, &EpochSchedule::warmup(), 0, &[0, 0]);
    }

    #[test]
    fn leader_schedule_is_deterministic_and_balanced() {
        let s = EpochSchedule::warmup();
        let mut counts = [0u32; 10];
        for slot in 0..5000 {
            let a = leader_for(7, &s, slot, 10);
            let b = leader_for(7, &s, slot, 10);
            assert_eq!(a, b);
            counts[a.index()] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!((400..600).contains(c), "node {i} got {c} slots of 5000");
        }
    }
}
