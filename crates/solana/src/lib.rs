//! # stabl-solana — a simulated Solana validator
//!
//! Models the Solana blockchain (v1.18.1 in the paper) for the Stabl
//! fault-tolerance study:
//!
//! * **Mempool-less leader pipeline** — RPC nodes forward client
//!   transactions straight to the scheduled leaders and retry every slot;
//!   crashed leaders leave empty slots followed by catch-up bursts, the
//!   throughput oscillation of the paper's §4.
//! * **Slots, warmup epochs and the leader schedule** ([`schedule`]) —
//!   deterministic, stake-weighted, computed ahead of time; the schedule
//!   cannot react to crashes.
//! * **Voting and rooting** — blocks confirm at a 2/3 supermajority and
//!   root a fixed distance behind; when more than `t` validators are
//!   unreachable, rooting stalls.
//! * **Epoch Accounts Hash** — the calculation must start from a bank
//!   rooted inside the epoch at the quarter mark and be in flight at the
//!   three-quarter mark, or `wait_get_epoch_accounts_hash` aborts the
//!   validator (anza-xyz/agave#1491). A transient outage or partition
//!   overlapping a short warmup epoch therefore crashes the whole
//!   cluster — the paper's headline Solana result (§5, §6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod node;
pub mod schedule;

pub use config::SolanaConfig;
pub use node::{SolanaMsg, SolanaNode, SolanaTimer};
pub use schedule::EpochSchedule;

/// [`SolanaNode`] wrapped with message-level Byzantine behaviors
/// (mutate, equivocate, delay, withhold) for selected nodes; configure
/// via [`SolanaConfig::with_byzantine`].
pub type ByzantineSolanaNode = stabl_sim::ByzantineWrapper<SolanaNode>;
