//! The simulated Solana validator: slot-clocked leader pipeline without a
//! mempool, tower-style voting and rooting, and the Epoch-Accounts-Hash
//! state machine whose violated precondition crashes every node after a
//! transient outage (paper §5).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use stabl_sim::{ContentionStats, Ctx, NodeId, Protocol, SimTime};
use stabl_types::{AccountPool, Block, Hash32, Ledger, Transaction, TxId};

use crate::{schedule, SolanaConfig};

/// Wire messages of the simulated Solana network.
#[derive(Clone, Debug)]
pub enum SolanaMsg {
    /// Transactions forwarded to a scheduled leader (no mempool).
    Forward {
        /// The forwarded transactions.
        txs: Vec<Transaction>,
    },
    /// A leader's block for its slot.
    BlockMsg {
        /// The slot the block was produced in.
        slot: u64,
        /// The produced block.
        block: Block,
    },
    /// A validator's vote on a slot's block.
    Vote {
        /// The voted slot.
        slot: u64,
        /// Hash of the voted block.
        hash: Hash32,
    },
    /// Catch-up request from a restarted validator.
    SyncRequest {
        /// First slot the requester is missing.
        from_slot: u64,
    },
    /// Catch-up response with confirmed blocks.
    SyncResponse {
        /// Confirmed (slot, block) pairs in slot order.
        blocks: Vec<(u64, Block)>,
    },
}

/// Timer tokens of the Solana node.
#[derive(Clone, Debug)]
pub enum SolanaTimer {
    /// Start of a slot.
    SlotTick {
        /// The slot that starts.
        slot: u64,
    },
    /// Leader block production point within our slot.
    Produce {
        /// The slot we lead.
        slot: u64,
    },
}

/// Epoch-Accounts-Hash progress for one epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EahState {
    /// Calculation started from a rooted bank in this epoch.
    Started,
}

/// A simulated Solana validator node.
#[derive(Debug)]
pub struct SolanaNode {
    id: NodeId,
    config: SolanaConfig,
    // Bank state.
    blocks: BTreeMap<u64, Block>,
    votes: BTreeMap<u64, BTreeMap<Hash32, BTreeSet<NodeId>>>,
    voted_slots: BTreeSet<u64>,
    confirmed: BTreeSet<u64>,
    highest_confirmed: u64,
    root: u64,
    ledger: Ledger,
    // Epoch-Accounts-Hash (durable: derived from snapshots on disk).
    eah: BTreeMap<u64, EahState>,
    // Leader pipeline: the per-slot buffer of forwarded transactions.
    buffer: AccountPool,
    // RPC outbox: client transactions pending confirmation.
    outbox: VecDeque<Transaction>,
    outbox_ids: BTreeSet<TxId>,
    current_slot: u64,
    // Stake distribution (leader slots and vote quorums are weighted).
    stakes: Vec<u64>,
    stake_quorum: u64,
}

impl SolanaNode {
    /// The slot the node believes is current.
    pub fn current_slot(&self) -> u64 {
        self.current_slot
    }

    /// The highest confirmed slot.
    pub fn highest_confirmed(&self) -> u64 {
        self.highest_confirmed
    }

    /// The highest rooted slot.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// The node's ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Client transactions waiting for confirmation at this RPC node.
    pub fn outbox_len(&self) -> usize {
        self.outbox.len()
    }

    fn slot_at(&self, now: SimTime) -> u64 {
        now.as_micros() / self.config.slot_duration.as_micros()
    }

    fn leader_for(&self, slot: u64) -> NodeId {
        schedule::leader_for_weighted(
            self.config.leader_seed,
            &self.config.schedule,
            slot,
            &self.stakes,
        )
    }

    /// The stake voting for `hash` at `slot`.
    fn voted_stake(&self, voters: &std::collections::BTreeSet<NodeId>) -> u64 {
        voters.iter().map(|v| self.stakes[v.index()]).sum()
    }

    fn handle_slot_start(&mut self, slot: u64, ctx: &mut Ctx<'_, Self>) {
        self.current_slot = slot;
        ctx.gauge("slot", slot);
        ctx.gauge("client_backlog", self.outbox.len() as u64);
        self.run_eah_checks(slot, ctx);
        // Leader duty: produce the slot's block three quarters in, after
        // forwarded transactions had time to arrive.
        if self.leader_for(slot) == self.id {
            ctx.span("leader-slot");
            let produce_at = self.config.slot_duration.mul_f64(0.75);
            ctx.set_timer(produce_at, SolanaTimer::Produce { slot });
        }
        self.flush_outbox(slot, ctx);
        ctx.set_timer(
            self.config.slot_duration,
            SolanaTimer::SlotTick { slot: slot + 1 },
        );
        // Garbage-collect old vote state.
        let keep_from = self.root.saturating_sub(64);
        self.votes.retain(|s, _| *s >= keep_from);
        self.blocks
            .retain(|s, _| *s + 256 >= keep_from + 256 && *s >= keep_from);
    }

    /// The Epoch-Accounts-Hash state machine. The calculation must start
    /// from a bank rooted *inside* the epoch at the quarter mark; at the
    /// three-quarter mark `wait_get_epoch_accounts_hash` aborts the
    /// validator if no calculation is in flight — it cannot be started
    /// retroactively (anza-xyz/agave#1491).
    fn run_eah_checks(&mut self, slot: u64, ctx: &mut Ctx<'_, Self>) {
        let epoch = self.config.schedule.epoch_of(slot);
        if slot == self.config.schedule.eah_start_slot(epoch) {
            let epoch_start = self.config.schedule.first_slot(epoch);
            // Genesis counts as rooted for epoch 0.
            if self.root >= epoch_start || epoch == 0 {
                self.eah.insert(epoch, EahState::Started);
            }
        }
        if slot == self.config.schedule.eah_stop_slot(epoch) && !self.eah.contains_key(&epoch) {
            ctx.panic_node(format!(
                "wait_get_epoch_accounts_hash: EAH for epoch {epoch} neither complete nor \
                 in flight (no bank rooted at the start of the epoch)"
            ));
        }
    }

    /// Forwards pending outbox transactions to the current and upcoming
    /// leaders (Solana has no mempool; RPC nodes retry every slot).
    fn flush_outbox(&mut self, slot: u64, ctx: &mut Ctx<'_, Self>) {
        if self.outbox.is_empty() {
            return;
        }
        let batch: Vec<Transaction> = self
            .outbox
            .iter()
            .take(self.config.resend_batch)
            .copied()
            .collect();
        let mut targets: Vec<NodeId> = Vec::new();
        for s in slot..=slot + self.config.forward_lookahead {
            let leader = self.leader_for(s);
            if !targets.contains(&leader) {
                targets.push(leader);
            }
        }
        for leader in targets {
            if leader == self.id {
                for tx in &batch {
                    self.buffer.insert(*tx);
                }
            } else {
                ctx.send(leader, SolanaMsg::Forward { txs: batch.clone() });
            }
        }
    }

    fn produce_block(&mut self, slot: u64, ctx: &mut Ctx<'_, Self>) {
        ctx.span("produce");
        ctx.gauge("mempool_depth", self.buffer.len() as u64);
        let txs = self.buffer.take_ready(self.config.max_block_txs);
        let parent = self
            .blocks
            .values()
            .next_back()
            .map(Block::hash)
            .unwrap_or(Hash32::ZERO);
        let block = Block::new(parent, slot, self.id, txs);
        ctx.broadcast(SolanaMsg::BlockMsg {
            slot,
            block: block.clone(),
        });
        self.handle_block(slot, block, ctx);
    }

    fn handle_block(&mut self, slot: u64, block: Block, ctx: &mut Ctx<'_, Self>) {
        if self.confirmed.contains(&slot) || slot < self.root {
            return;
        }
        let hash = block.hash();
        self.blocks.insert(slot, block);
        if self.voted_slots.insert(slot) {
            ctx.broadcast(SolanaMsg::Vote { slot, hash });
            self.record_vote(self.id, slot, hash, ctx);
        }
    }

    fn record_vote(&mut self, from: NodeId, slot: u64, hash: Hash32, ctx: &mut Ctx<'_, Self>) {
        if self.confirmed.contains(&slot) {
            return;
        }
        let votes = self.votes.entry(slot).or_default().entry(hash).or_default();
        votes.insert(from);
        let voted = self.voted_stake(&self.votes[&slot][&hash]);
        if voted >= self.stake_quorum {
            self.confirm(slot, ctx);
        }
    }

    fn confirm(&mut self, slot: u64, ctx: &mut Ctx<'_, Self>) {
        let Some(block) = self.blocks.get(&slot).cloned() else {
            return;
        };
        if !self.confirmed.insert(slot) {
            return;
        }
        for tx in block.txs() {
            match self.ledger.apply(tx) {
                Ok(id) => {
                    ctx.commit(id);
                    self.buffer.mark_committed(tx.from(), tx.nonce() + 1);
                    self.drop_from_outbox(id);
                }
                Err(stabl_types::ApplyError::SequenceNumberTooOld { .. }) => {
                    self.drop_from_outbox(tx.id());
                }
                Err(_) => {} // nonce gap: the origin RPC node will retry
            }
        }
        self.highest_confirmed = self.highest_confirmed.max(slot);
        self.root = self.root.max(
            self.highest_confirmed
                .saturating_sub(self.config.root_lag_slots),
        );
    }

    fn drop_from_outbox(&mut self, id: TxId) {
        if self.outbox_ids.remove(&id) {
            self.outbox.retain(|tx| tx.id() != id);
        }
    }

    fn handle_sync_request(&mut self, from: NodeId, from_slot: u64, ctx: &mut Ctx<'_, Self>) {
        let blocks: Vec<(u64, Block)> = self
            .blocks
            .range(from_slot..)
            .filter(|(slot, _)| self.confirmed.contains(slot))
            .take(64)
            .map(|(slot, block)| (*slot, block.clone()))
            .collect();
        if !blocks.is_empty() {
            ctx.send(from, SolanaMsg::SyncResponse { blocks });
        }
    }

    fn handle_sync_response(&mut self, blocks: Vec<(u64, Block)>, ctx: &mut Ctx<'_, Self>) {
        for (slot, block) in blocks {
            if self.confirmed.contains(&slot) {
                continue;
            }
            self.blocks.insert(slot, block);
            self.confirm(slot, ctx);
        }
    }
}

impl Protocol for SolanaNode {
    type Msg = SolanaMsg;
    type Request = Transaction;
    type Commit = TxId;
    type Timer = SolanaTimer;
    type Config = SolanaConfig;

    fn new(id: NodeId, n: usize, config: &SolanaConfig, ctx: &mut Ctx<'_, Self>) -> Self {
        let stakes = config.stakes_for(n);
        let stake_quorum = config.stake_quorum(stakes.iter().sum());
        let mut node = SolanaNode {
            id,
            config: config.clone(),
            blocks: BTreeMap::new(),
            votes: BTreeMap::new(),
            voted_slots: BTreeSet::new(),
            confirmed: BTreeSet::new(),
            highest_confirmed: 0,
            root: 0,
            ledger: if config.model_contention {
                Ledger::with_lazy_balance(u64::MAX / 512)
            } else {
                Ledger::with_uniform_balance(256, u64::MAX / 512)
            },
            eah: BTreeMap::new(),
            buffer: AccountPool::new(config.outbox_capacity),
            outbox: VecDeque::new(),
            outbox_ids: BTreeSet::new(),
            current_slot: 0,
            stakes,
            stake_quorum,
        };
        node.handle_slot_start(0, ctx);
        node
    }

    fn on_message(&mut self, from: NodeId, msg: SolanaMsg, ctx: &mut Ctx<'_, Self>) {
        match msg {
            SolanaMsg::Forward { txs } => {
                for tx in txs {
                    self.buffer.insert(tx);
                }
            }
            SolanaMsg::BlockMsg { slot, block } => self.handle_block(slot, block, ctx),
            SolanaMsg::Vote { slot, hash } => self.record_vote(from, slot, hash, ctx),
            SolanaMsg::SyncRequest { from_slot } => self.handle_sync_request(from, from_slot, ctx),
            SolanaMsg::SyncResponse { blocks } => self.handle_sync_response(blocks, ctx),
        }
    }

    fn on_timer(&mut self, timer: SolanaTimer, ctx: &mut Ctx<'_, Self>) {
        match timer {
            SolanaTimer::SlotTick { slot } => self.handle_slot_start(slot, ctx),
            SolanaTimer::Produce { slot } => self.produce_block(slot, ctx),
        }
    }

    fn on_request(&mut self, tx: Transaction, ctx: &mut Ctx<'_, Self>) {
        if self.ledger.next_nonce(tx.from()) > tx.nonce() || self.outbox_ids.contains(&tx.id()) {
            return;
        }
        if self.outbox.len() >= self.config.outbox_capacity {
            return;
        }
        self.outbox_ids.insert(tx.id());
        self.outbox.push_back(tx);
        // Forward immediately as well as on the next slot ticks.
        let slot = self.slot_at(ctx.now());
        let leader = self.leader_for(slot);
        if leader == self.id {
            self.buffer.insert(tx);
        } else {
            ctx.send(leader, SolanaMsg::Forward { txs: vec![tx] });
        }
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_, Self>) {
        let now_slot = self.slot_at(ctx.now());
        self.current_slot = now_slot;
        // Volatile state is gone.
        self.buffer.clear_pending();
        self.outbox.clear();
        self.outbox_ids.clear();
        self.votes.clear();
        self.voted_slots.clear();
        // Restart validation: replaying into an epoch whose EAH start
        // point has passed without a calculation aborts the validator
        // (anza-xyz/agave#1491 — "validator fails to restart").
        let epoch = self.config.schedule.epoch_of(now_slot);
        if now_slot >= self.config.schedule.eah_start_slot(epoch) && !self.eah.contains_key(&epoch)
        {
            ctx.panic_node(format!(
                "wait_get_epoch_accounts_hash on restart: EAH for epoch {epoch} was never \
                 started (node was down at the start slot)"
            ));
            return;
        }
        // Resume the slot clock at the next boundary and catch up.
        let next_slot = now_slot + 1;
        let boundary = SimTime::from_micros(next_slot * self.config.slot_duration.as_micros());
        ctx.set_timer(
            boundary.saturating_since(ctx.now()),
            SolanaTimer::SlotTick { slot: next_slot },
        );
        ctx.broadcast(SolanaMsg::SyncRequest {
            from_slot: self.root,
        });
    }

    fn contention_stats(&self) -> ContentionStats {
        ContentionStats {
            pool_evictions: self.buffer.rejected_full(),
            pool_replacements: self.buffer.rejected_conflict(),
            ..ContentionStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabl_sim::{NodeStatus, PartitionRule, SimDuration, Simulation};
    use stabl_types::AccountId;
    use std::collections::HashSet as Set;

    fn sim(n: usize, seed: u64) -> Simulation<SolanaNode> {
        Simulation::new(n, seed, SolanaConfig::default())
    }

    fn submit_stream(
        sim: &mut Simulation<SolanaNode>,
        accounts: u32,
        tps: u64,
        from: u64,
        to: u64,
    ) {
        let targets = (sim.n() as u64 / 2).max(1);
        let period_us = 1_000_000 / tps;
        let mut nonces = vec![0u64; accounts as usize];
        let mut at = SimTime::from_secs(from);
        let mut k = 0u64;
        while at < SimTime::from_secs(to) {
            let acct = (k % accounts as u64) as u32;
            let tx = Transaction::transfer(
                AccountId::new(acct),
                nonces[acct as usize],
                AccountId::new(200 + acct),
                1,
            );
            nonces[acct as usize] += 1;
            sim.schedule_request(at, NodeId::new((k % targets) as u32), tx);
            at += SimDuration::from_micros(period_us);
            k += 1;
        }
    }

    fn unique_commits_at(sim: &Simulation<SolanaNode>, node: u32) -> usize {
        sim.commits()
            .iter()
            .filter(|c| c.node == NodeId::new(node))
            .map(|c| c.commit)
            .collect::<Set<TxId>>()
            .len()
    }

    #[test]
    fn commits_offered_load_in_baseline() {
        let mut s = sim(10, 1);
        submit_stream(&mut s, 10, 100, 1, 11);
        s.run_until(SimTime::from_secs(20));
        assert_eq!(unique_commits_at(&s, 0), 1000);
        assert!(s.panics().is_empty(), "no EAH panic in a healthy run");
    }

    #[test]
    fn baseline_survives_warmup_epoch_boundaries() {
        let mut s = sim(10, 2);
        submit_stream(&mut s, 10, 50, 1, 115);
        // Runs through epochs 0..3 and the EAH start check of epoch 3
        // (slot 288, t = 115.2 s).
        s.run_until(SimTime::from_secs(120));
        assert!(s.panics().is_empty(), "panics: {:?}", s.panics());
        assert_eq!(unique_commits_at(&s, 0), 5700);
    }

    #[test]
    fn latency_is_subsecond_in_baseline() {
        let mut s = sim(10, 3);
        let tx = Transaction::transfer(AccountId::new(0), 0, AccountId::new(1), 1);
        s.schedule_request(SimTime::from_secs(5), NodeId::new(0), tx);
        s.run_until(SimTime::from_secs(10));
        let commit = s
            .commits()
            .iter()
            .find(|c| c.commit == tx.id() && c.node == NodeId::new(0))
            .expect("committed");
        let latency = commit.time - SimTime::from_secs(5);
        assert!(
            latency < SimDuration::from_millis(1500),
            "latency {latency}"
        );
    }

    #[test]
    fn crashed_leaders_make_throughput_bursty_but_no_panic() {
        let mut s = sim(10, 4);
        submit_stream(&mut s, 10, 100, 1, 60);
        for i in 5..8u32 {
            s.schedule_crash(SimTime::from_secs(20), NodeId::new(i)); // f = t = 3
        }
        s.run_until(SimTime::from_secs(80));
        assert!(
            s.panics().is_empty(),
            "rooting continues with 7/10: {:?}",
            s.panics()
        );
        assert_eq!(
            unique_commits_at(&s, 0),
            5900,
            "all load commits despite dead leaders"
        );
        // Dead-leader slots produce nothing: per-slot (400 ms) commit
        // buckets show far more empty slots after the crash.
        let bucket_of = |t: SimTime| (t.as_micros() / 400_000) as usize;
        let mut buckets = vec![0u32; bucket_of(SimTime::from_secs(80)) + 1];
        for c in s.commits().iter().filter(|c| c.node == NodeId::new(0)) {
            buckets[bucket_of(c.time)] += 1;
        }
        let empty_in = |from: u64, to: u64| {
            (bucket_of(SimTime::from_secs(from))..bucket_of(SimTime::from_secs(to)))
                .filter(|&b| buckets[b] == 0)
                .count()
        };
        let before = empty_in(4, 19);
        let after = empty_in(24, 59);
        assert!(
            after as f64 / 35.0 > before as f64 / 15.0 + 0.15,
            "expected more dead slots after the crash: before {before}/15s, after {after}/35s"
        );
    }

    #[test]
    fn transient_outage_panics_every_node() {
        let mut s = sim(10, 5);
        submit_stream(&mut s, 10, 100, 1, 300);
        // f = t + 1 = 4 transient failures spanning the start check of
        // warmup epoch 4 (slot 608, t = 243.2 s): rooting stalls, the
        // EAH never starts, and the whole cluster dies.
        for i in 5..9u32 {
            s.schedule_crash(SimTime::from_secs(150), NodeId::new(i));
            s.schedule_restart(SimTime::from_secs(250), NodeId::new(i));
        }
        s.run_until(SimTime::from_secs(360));
        // The restarted nodes abort on restart; the others at the stop
        // slot of epoch 4 (slot 864, t = 345.6 s).
        for i in 0..10u32 {
            assert_eq!(
                s.status(NodeId::new(i)),
                NodeStatus::Panicked,
                "node {i} should have aborted"
            );
        }
        let late_commits = s
            .commits()
            .iter()
            .filter(|c| c.time > SimTime::from_secs(160))
            .count();
        assert_eq!(late_commits, 0, "no quorum, then no validators at all");
    }

    #[test]
    fn partition_also_ends_in_cluster_panic() {
        let mut s = sim(10, 6);
        submit_stream(&mut s, 10, 100, 1, 300);
        let isolated: Vec<NodeId> = (5..9u32).map(NodeId::new).collect();
        s.schedule_partition(
            SimTime::from_secs(150),
            SimTime::from_secs(250),
            PartitionRule::isolate(isolated, 10),
        );
        s.run_until(SimTime::from_secs(360));
        let panicked = (0..10u32)
            .filter(|i| s.status(NodeId::new(*i)) == NodeStatus::Panicked)
            .count();
        assert_eq!(panicked, 10, "EAH stop slot of epoch 4 aborts the cluster");
    }

    #[test]
    fn forwarding_reaches_future_leaders_when_current_is_dead() {
        let mut s = sim(10, 7);
        // Find a slot led by node 9, crash node 9, submit during its
        // slot: the transaction still commits through the next leaders.
        s.schedule_crash(SimTime::from_secs(4), NodeId::new(9));
        submit_stream(&mut s, 5, 50, 5, 15);
        s.run_until(SimTime::from_secs(25));
        assert_eq!(unique_commits_at(&s, 0), 500);
    }

    #[test]
    fn crashing_a_whale_stalls_despite_being_one_node() {
        // Stake centralisation: node 9 holds 40% of the stake. Crashing
        // it alone (far below the nominal t = 3 *node* threshold) takes
        // the network under the 2/3 *stake* supermajority and halts
        // confirmations — fault tolerance is about stake, not machines.
        let config = SolanaConfig {
            stakes: Some(vec![1, 1, 1, 1, 1, 1, 1, 1, 1, 6]),
            ..SolanaConfig::default()
        };
        let mut s = Simulation::<SolanaNode>::new(10, 10, config);
        let mut nonces = [0u64; 10];
        let mut at = SimTime::from_secs(1);
        let mut k = 0u64;
        while at < SimTime::from_secs(30) {
            let acct = (k % 10) as u32;
            let tx = Transaction::transfer(
                AccountId::new(acct),
                nonces[acct as usize],
                AccountId::new(200 + acct),
                1,
            );
            nonces[acct as usize] += 1;
            s.schedule_request(at, NodeId::new((k % 5) as u32), tx);
            at += SimDuration::from_millis(10);
            k += 1;
        }
        s.schedule_crash(SimTime::from_secs(10), NodeId::new(9));
        s.run_until(SimTime::from_secs(30));
        let late = s
            .commits()
            .iter()
            .filter(|c| c.time > SimTime::from_secs(12))
            .count();
        assert_eq!(late, 0, "9/15 stake is below the 2/3 supermajority");
    }

    #[test]
    fn restart_within_t_and_with_eah_state_survives() {
        // One node (f < t) restarts at 30 s: it was up at epoch 1's EAH
        // start slot (19.2 s), so the restart check passes, it resyncs
        // and the cluster stays healthy through later epoch boundaries.
        let mut s = sim(10, 9);
        submit_stream(&mut s, 10, 100, 1, 60);
        s.schedule_crash(SimTime::from_secs(22), NodeId::new(9));
        s.schedule_restart(SimTime::from_secs(30), NodeId::new(9));
        s.run_until(SimTime::from_secs(70));
        assert!(s.panics().is_empty(), "panics: {:?}", s.panics());
        assert_eq!(unique_commits_at(&s, 0), 5900, "all load commits");
        assert_eq!(s.status(NodeId::new(9)), NodeStatus::Running);
    }

    #[test]
    fn deterministic_runs() {
        let run = |seed| {
            let mut s = sim(4, seed);
            submit_stream(&mut s, 4, 50, 1, 5);
            s.run_until(SimTime::from_secs(10));
            s.commits()
                .iter()
                .map(|c| (c.time.as_micros(), c.node.as_u32()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn replicas_converge() {
        let mut s = sim(10, 8);
        submit_stream(&mut s, 10, 100, 1, 20);
        s.run_until(SimTime::from_secs(30));
        let executed: Set<u64> = (0..10u32)
            .map(|i| s.node(NodeId::new(i)).ledger().executed())
            .collect();
        assert_eq!(executed.len(), 1, "diverged: {executed:?}");
    }
}
