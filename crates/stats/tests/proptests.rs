//! Property tests for the stats subsystem.
//!
//! The two load-bearing properties the replication engine relies on:
//! sketch `merge` must be associative and order-insensitive (a folded
//! summary equals the one-shot summary however the per-seed parts are
//! grouped), and bootstrap confidence intervals must be byte-identical
//! across runs with the same seed.

use proptest::prelude::*;

use stabl_sim::DetRng;
use stabl_stats::{percentile_ci, MeanVar, QuantileSketch, SeedSequence};

fn latencies() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..500.0, 1..120)
}

fn scores() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..10.0, 1..12)
}

proptest! {
    /// Grouping: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) bit-for-bit for the
    /// integer quantile sketch.
    #[test]
    fn sketch_merge_is_associative(data in latencies(), cut_a in 0usize..120, cut_b in 0usize..120) {
        let i = cut_a.min(data.len());
        let j = cut_b.min(data.len()).max(i);
        let a = QuantileSketch::from_secs(data[..i].iter().copied());
        let b = QuantileSketch::from_secs(data[i..j].iter().copied());
        let c = QuantileSketch::from_secs(data[j..].iter().copied());

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        prop_assert_eq!(&left, &right);
    }

    /// Order: any merge order equals the one-shot sketch bit-for-bit.
    #[test]
    fn sketch_merge_is_order_insensitive(data in latencies(), cut in 0usize..120) {
        let i = cut.min(data.len());
        let one_shot = QuantileSketch::from_secs(data.iter().copied());

        let head = QuantileSketch::from_secs(data[..i].iter().copied());
        let tail = QuantileSketch::from_secs(data[i..].iter().copied());

        let mut forward = head.clone();
        forward.merge(&tail);
        let mut backward = tail.clone();
        backward.merge(&head);

        prop_assert_eq!(&forward, &one_shot);
        prop_assert_eq!(&backward, &one_shot);
    }

    /// Sketch quantiles stay within the grid's 1/64 relative error of
    /// the exact nearest-rank quantile (plus the 0.5 µs rounding).
    #[test]
    fn sketch_quantile_error_is_bounded(data in latencies(), q in 0.0f64..1.0) {
        let sketch = QuantileSketch::from_secs(data.iter().copied());
        let mut sorted = data.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let approx = sketch.quantile(q).expect("non-empty");
        // Bucket lower bound can undershoot by 1/64 relative; rounding
        // to whole microseconds adds half a microsecond of slack.
        let tolerance = exact / 64.0 + 1e-6;
        prop_assert!(approx <= exact + 1e-6, "approx {} exact {}", approx, exact);
        prop_assert!(approx >= exact - tolerance, "approx {} exact {}", approx, exact);
    }

    /// Welford merge matches the one-shot moments to floating-point
    /// tolerance, and exactly in count/min/max.
    #[test]
    fn meanvar_merge_is_order_insensitive(data in latencies(), cut in 0usize..120) {
        let i = cut.min(data.len());
        let one_shot = MeanVar::from_samples(data.iter().copied());

        let head = MeanVar::from_samples(data[..i].iter().copied());
        let tail = MeanVar::from_samples(data[i..].iter().copied());
        let mut forward = head.clone();
        forward.merge(&tail);
        let mut backward = tail.clone();
        backward.merge(&head);

        for merged in [&forward, &backward] {
            prop_assert_eq!(merged.count, one_shot.count);
            prop_assert_eq!(merged.min, one_shot.min);
            prop_assert_eq!(merged.max, one_shot.max);
            prop_assert!((merged.mean - one_shot.mean).abs() < 1e-9,
                "mean {} vs {}", merged.mean, one_shot.mean);
            prop_assert!((merged.m2 - one_shot.m2).abs() < 1e-6 * (1.0 + one_shot.m2),
                "m2 {} vs {}", merged.m2, one_shot.m2);
        }
    }

    /// Two bootstrap runs with the same seed agree to the bit; a
    /// different seed moves at least one endpoint (for spread data).
    #[test]
    fn bootstrap_is_byte_identical_per_seed(data in scores(), seed in 0u64..1_000_000) {
        let a = percentile_ci(&data, &mut DetRng::new(seed)).expect("finite samples");
        let b = percentile_ci(&data, &mut DetRng::new(seed)).expect("finite samples");
        prop_assert_eq!(a.point.to_bits(), b.point.to_bits());
        prop_assert_eq!(a.lo.to_bits(), b.lo.to_bits());
        prop_assert_eq!(a.hi.to_bits(), b.hi.to_bits());
        prop_assert_eq!(a.n, b.n);
    }

    /// The interval always brackets its point estimate.
    #[test]
    fn bootstrap_brackets_the_mean(data in scores(), seed in 0u64..1_000_000) {
        let ci = percentile_ci(&data, &mut DetRng::new(seed)).expect("finite samples");
        prop_assert!(ci.lo <= ci.point + 1e-12, "lo {} point {}", ci.lo, ci.point);
        prop_assert!(ci.hi >= ci.point - 1e-12, "hi {} point {}", ci.hi, ci.point);
        prop_assert!(ci.lo.is_finite() && ci.hi.is_finite());
    }

    /// Seed sequences are pure functions of (base, index) and distinct
    /// across the indices a campaign will ever use.
    #[test]
    fn seed_sequence_is_pure_and_collision_free(base in 0u64..u64::MAX) {
        let seq = SeedSequence::new(base);
        let seeds = seq.seeds(32);
        prop_assert_eq!(&seeds, &SeedSequence::new(base).seeds(32));
        prop_assert_eq!(seeds[0], base);
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), seeds.len(), "collision in 32 replicates");
    }
}
