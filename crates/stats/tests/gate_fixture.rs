//! End-to-end fixture test for the regression gate: build two artifact
//! trees on disk, perturb one metric beyond its golden CI, and check
//! the gate classifies it as a regression (the acceptance criterion
//! behind the non-zero CI exit code).

use std::fs;
use std::path::{Path, PathBuf};

use stabl_stats::gate::{compare_trees, GATE_DEFAULT_SLACK, VERDICT_REGRESSION};
use stabl_stats::{CellObservation, ReplicatedCampaign, ReplicatedCell};

/// A unique scratch directory per test, cleaned up on drop.
struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let root =
            std::env::temp_dir().join(format!("stabl-stats-gate-{}-{tag}", std::process::id()));
        // A stale tree from a crashed run would poison the fixture.
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create scratch dir");
        Scratch { root }
    }

    fn path(&self) -> &Path {
        &self.root
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn observation(seed: u64, score: f64) -> CellObservation {
    CellObservation {
        seed,
        score: Some(score),
        improved: false,
        commit_ratio: 0.99,
        mean_latency: Some(score * 0.1),
    }
}

fn campaign(score_base: f64) -> ReplicatedCampaign {
    let cells = ["crash", "transient"]
        .iter()
        .map(|scenario| {
            let observations: Vec<CellObservation> = (0..8)
                .map(|i| observation(i, score_base + i as f64 * 0.01))
                .collect();
            ReplicatedCell::from_observations("Redbelly", scenario, &observations, 42)
        })
        .collect();
    ReplicatedCampaign {
        base_seed: 42,
        replicates: 8,
        horizon_secs: 20,
        cells,
    }
}

fn write_tree(root: &Path, campaign: &ReplicatedCampaign) {
    let dir = root.join("stats");
    fs::create_dir_all(&dir).expect("create artifact dir");
    let json = serde_json::to_string_pretty(campaign).expect("serialise campaign");
    fs::write(dir.join("fig3_sensitivity_ci.json"), json).expect("write artifact");
}

#[test]
fn identical_trees_pass_the_gate() {
    let golden = Scratch::new("identical-golden");
    let fresh = Scratch::new("identical-fresh");
    let c = campaign(1.0);
    write_tree(golden.path(), &c);
    write_tree(fresh.path(), &c);

    let report = compare_trees(golden.path(), fresh.path(), GATE_DEFAULT_SLACK).expect("gate runs");
    assert_eq!(report.regressions, 0, "{}", report.render());
    assert_eq!(report.suspect, 0);
    assert!(report.passed());
    assert_eq!(report.files, 1);
    assert_eq!(report.cells, 2);
}

#[test]
fn perturbed_metric_beyond_ci_regresses() {
    let golden = Scratch::new("perturbed-golden");
    let fresh = Scratch::new("perturbed-fresh");
    write_tree(golden.path(), &campaign(1.0));
    // The golden score CI spans a few hundredths around 1.035; a 5x
    // shift is far beyond even the slack-widened band.
    write_tree(fresh.path(), &campaign(5.0));

    let report = compare_trees(golden.path(), fresh.path(), GATE_DEFAULT_SLACK).expect("gate runs");
    assert!(report.regressions > 0, "{}", report.render());
    assert!(!report.passed(), "gate must fail → binary exits non-zero");
    let regressed: Vec<&str> = report
        .verdicts
        .iter()
        .filter(|v| v.verdict == VERDICT_REGRESSION)
        .map(|v| v.metric.as_str())
        .collect();
    assert!(regressed.contains(&"score"), "{regressed:?}");
}

#[test]
fn missing_fresh_artifact_regresses() {
    let golden = Scratch::new("missing-golden");
    let fresh = Scratch::new("missing-fresh");
    write_tree(golden.path(), &campaign(1.0));
    fs::create_dir_all(fresh.path().join("stats")).expect("create empty fresh tree");

    let report = compare_trees(golden.path(), fresh.path(), GATE_DEFAULT_SLACK).expect("gate runs");
    assert!(report.regressions > 0);
    assert!(report
        .verdicts
        .iter()
        .any(|v| v.metric == "artifact" && v.verdict == VERDICT_REGRESSION));
}

#[test]
fn empty_golden_tree_is_an_error() {
    let golden = Scratch::new("empty-golden");
    let fresh = Scratch::new("empty-fresh");
    fs::create_dir_all(fresh.path()).expect("fresh dir");

    let err = compare_trees(golden.path(), fresh.path(), GATE_DEFAULT_SLACK)
        .expect_err("no artifacts must be an error, not a silent pass");
    assert!(err.to_string().contains("no *_ci.json"), "{err}");
}
