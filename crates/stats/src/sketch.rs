//! Mergeable summary sketches: Welford mean/variance and a
//! deterministic fixed-bucket quantile sketch.
//!
//! Both sketches are built for the replication engine's fold: a summary
//! of N per-seed runs must equal the summary of one concatenated run,
//! whatever order the per-seed parts arrive in. [`QuantileSketch`]
//! achieves this *exactly* — its state is integer bucket counts, so
//! `merge` is associative and commutative bit-for-bit. [`MeanVar`] uses
//! Welford's recurrence with Chan's parallel combination; its merge is
//! order-insensitive up to floating-point rounding (exact in count,
//! ≈1 ulp in the moments), and every code path folds in a fixed order
//! so serialised artifacts stay byte-identical across runs.
//!
//! The quantile sketch quantises samples onto a fixed HDR-style grid:
//! integer microseconds with [`SKETCH_SUB_BUCKET_BITS`] bits of
//! sub-bucket resolution per octave, giving a deterministic relative
//! error of at most `2^-6 ≈ 1.6 %` — no floating-point binning that
//! could differ across platforms, and no data-dependent bucket layout
//! that would break associativity.

use serde::{Deserialize, Serialize};

/// Sub-bucket resolution of [`QuantileSketch`]: each power-of-two
/// octave is split into `2^SKETCH_SUB_BUCKET_BITS = 64` linear buckets,
/// bounding the relative quantisation error by 1/64.
pub const SKETCH_SUB_BUCKET_BITS: u32 = 6;

const SUB_COUNT: u64 = 1 << SKETCH_SUB_BUCKET_BITS;

/// Single-pass mean and variance (Welford) with Chan's parallel merge.
///
/// # Examples
///
/// ```
/// use stabl_stats::MeanVar;
///
/// let mut mv = MeanVar::new();
/// for x in [1.0, 2.0, 3.0] {
///     mv.record(x);
/// }
/// assert_eq!(mv.mean(), Some(2.0));
/// assert_eq!(mv.sample_variance(), Some(1.0));
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MeanVar {
    /// Finite samples recorded.
    pub count: u64,
    /// Running mean (meaningless while `count == 0`).
    pub mean: f64,
    /// Sum of squared deviations from the mean (Welford's `M2`).
    pub m2: f64,
    /// Smallest recorded sample (meaningless while `count == 0`).
    pub min: f64,
    /// Largest recorded sample (meaningless while `count == 0`).
    pub max: f64,
    /// Non-finite samples that were rejected rather than recorded.
    pub rejected: u64,
}

impl MeanVar {
    /// An empty accumulator.
    pub fn new() -> MeanVar {
        MeanVar {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: 0.0,
            max: 0.0,
            rejected: 0,
        }
    }

    /// Builds an accumulator from an iterator of samples.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> MeanVar {
        let mut mv = MeanVar::new();
        for x in samples {
            mv.record(x);
        }
        mv
    }

    /// Records one sample. Non-finite values are counted in
    /// [`MeanVar::rejected`] instead of poisoning the moments.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            self.rejected += 1;
            return;
        }
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Finite samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` if nothing (finite) was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The sample mean, if any sample was recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// The unbiased sample variance (`n − 1` denominator); needs at
    /// least two samples.
    pub fn sample_variance(&self) -> Option<f64> {
        (self.count >= 2).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// The sample standard deviation; needs at least two samples.
    pub fn std_dev(&self) -> Option<f64> {
        self.sample_variance().map(f64::sqrt)
    }

    /// The smallest recorded sample.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// The largest recorded sample.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Folds `other` into `self` (Chan et al.'s pairwise combination).
    /// Order-insensitive up to floating-point rounding; exact in
    /// `count`, `min`, `max` and `rejected`.
    pub fn merge(&mut self, other: &MeanVar) {
        self.rejected += other.rejected;
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            let rejected = self.rejected;
            *self = other.clone();
            self.rejected = rejected;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count = total;
    }
}

impl Default for MeanVar {
    fn default() -> Self {
        MeanVar::new()
    }
}

/// The bucket a span of `micros` microseconds falls into: values below
/// `2 · 64 = 128` map to themselves (exact), larger values keep their
/// top `1 + SKETCH_SUB_BUCKET_BITS` significant bits. Monotone and
/// contiguous across octave boundaries.
fn bucket_index(micros: u64) -> u64 {
    if micros < 2 * SUB_COUNT {
        return micros;
    }
    let exp = u64::from(63 - micros.leading_zeros());
    let shift = exp - u64::from(SKETCH_SUB_BUCKET_BITS);
    (shift << SKETCH_SUB_BUCKET_BITS) + (micros >> shift)
}

/// The smallest value mapping to bucket `index` (the sketch's
/// representative for the bucket).
fn bucket_lower_bound(index: u64) -> u64 {
    if index < 2 * SUB_COUNT {
        return index;
    }
    let shift = (index >> SKETCH_SUB_BUCKET_BITS) - 1;
    let sub = index - (shift << SKETCH_SUB_BUCKET_BITS);
    sub << shift
}

/// A deterministic fixed-bucket quantile sketch over non-negative
/// latency samples (seconds, quantised to integer microseconds).
///
/// The bucket grid is fixed up front (HDR-style: 64 linear sub-buckets
/// per power-of-two octave), so `merge` is plain integer addition —
/// associative, commutative and bit-exact. Quantiles are nearest-rank
/// over the bucket counts and return the bucket's lower bound, clamped
/// into the exact `[min, max]` of the recorded samples; the relative
/// quantisation error is at most 1/64 (values below 128 µs are exact).
///
/// # Examples
///
/// ```
/// use stabl_stats::QuantileSketch;
///
/// let sketch = QuantileSketch::from_secs([0.000_001, 0.000_002, 0.000_003]);
/// assert_eq!(sketch.quantile(0.5), Some(0.000_002));
/// assert_eq!(sketch.quantile(1.0), Some(0.000_003));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantileSketch {
    /// Sparse `(bucket index, count)` pairs, sorted by index.
    pub buckets: Vec<(u64, u64)>,
    /// Samples recorded.
    pub count: u64,
    /// Exact smallest recorded sample, microseconds.
    pub min_micros: u64,
    /// Exact largest recorded sample, microseconds.
    pub max_micros: u64,
    /// Negative or non-finite samples that were rejected.
    pub rejected: u64,
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> QuantileSketch {
        QuantileSketch {
            buckets: Vec::new(),
            count: 0,
            min_micros: 0,
            max_micros: 0,
            rejected: 0,
        }
    }

    /// Builds a sketch from latency samples in seconds.
    pub fn from_secs<I: IntoIterator<Item = f64>>(samples: I) -> QuantileSketch {
        let mut sketch = QuantileSketch::new();
        for x in samples {
            sketch.record_secs(x);
        }
        sketch
    }

    /// Records one latency in seconds. Negative or non-finite samples
    /// are counted in [`QuantileSketch::rejected`] instead.
    pub fn record_secs(&mut self, secs: f64) {
        if !secs.is_finite() || secs < 0.0 {
            self.rejected += 1;
            return;
        }
        // `as` saturates at u64::MAX for absurd inputs — deterministic.
        self.record_micros((secs * 1e6).round() as u64);
    }

    /// Records one latency in integer microseconds.
    pub fn record_micros(&mut self, micros: u64) {
        if self.count == 0 {
            self.min_micros = micros;
            self.max_micros = micros;
        } else {
            self.min_micros = self.min_micros.min(micros);
            self.max_micros = self.max_micros.max(micros);
        }
        self.count += 1;
        let index = bucket_index(micros);
        match self.buckets.binary_search_by_key(&index, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += 1,
            Err(pos) => self.buckets.insert(pos, (index, 1)),
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The exact smallest sample, seconds.
    pub fn min_secs(&self) -> Option<f64> {
        (self.count > 0).then(|| self.min_micros as f64 / 1e6)
    }

    /// The exact largest sample, seconds.
    pub fn max_secs(&self) -> Option<f64> {
        (self.count > 0).then(|| self.max_micros as f64 / 1e6)
    }

    /// The nearest-rank `q`-quantile, seconds (`q` clamped to
    /// `[0, 1]`). Quantised to the bucket grid except for `q = 0` and
    /// `q = 1`, which are exact.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == self.count {
            return Some(self.max_micros as f64 / 1e6);
        }
        let mut seen = 0u64;
        for &(index, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let micros = bucket_lower_bound(index).clamp(self.min_micros, self.max_micros);
                return Some(micros as f64 / 1e6);
            }
        }
        Some(self.max_micros as f64 / 1e6)
    }

    /// Folds `other` into `self`. Associative, commutative and
    /// bit-exact: the state is integer bucket counts, merged by
    /// merge-join over the shared fixed grid.
    pub fn merge(&mut self, other: &QuantileSketch) {
        self.rejected += other.rejected;
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            let rejected = self.rejected;
            *self = other.clone();
            self.rejected = rejected;
            return;
        }
        self.min_micros = self.min_micros.min(other.min_micros);
        self.max_micros = self.max_micros.max(other.max_micros);
        self.count += other.count;
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => {
                    if ia == ib {
                        merged.push((ia, ca + cb));
                        a.next();
                        b.next();
                    } else if ia < ib {
                        merged.push((ia, ca));
                        a.next();
                    } else {
                        merged.push((ib, cb));
                        b.next();
                    }
                }
                (Some(&&pair), None) => {
                    merged.push(pair);
                    a.next();
                }
                (None, Some(&&pair)) => {
                    merged.push(pair);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meanvar_matches_closed_form() {
        let mv = MeanVar::from_samples([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(mv.count(), 8);
        assert_eq!(mv.mean(), Some(5.0));
        // Population variance is 4.0, sample variance 32/7.
        let var = mv.sample_variance().expect("two samples");
        assert!((var - 32.0 / 7.0).abs() < 1e-12, "{var}");
        assert_eq!(mv.min(), Some(2.0));
        assert_eq!(mv.max(), Some(9.0));
    }

    #[test]
    fn meanvar_rejects_non_finite() {
        let mv = MeanVar::from_samples([1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(mv.count(), 2);
        assert_eq!(mv.rejected, 2);
        assert_eq!(mv.mean(), Some(2.0));
    }

    #[test]
    fn meanvar_empty_is_none_everywhere() {
        let mv = MeanVar::new();
        assert!(mv.is_empty());
        assert_eq!(mv.mean(), None);
        assert_eq!(mv.sample_variance(), None);
        assert_eq!(mv.std_dev(), None);
        assert_eq!(mv.min(), None);
        assert_eq!(mv.max(), None);
    }

    #[test]
    fn meanvar_merge_equals_one_shot() {
        let all: Vec<f64> = (0..40).map(|i| (i as f64).sin() * 10.0 + 12.0).collect();
        let one_shot = MeanVar::from_samples(all.iter().copied());
        let mut merged = MeanVar::from_samples(all[..13].iter().copied());
        merged.merge(&MeanVar::from_samples(all[13..29].iter().copied()));
        merged.merge(&MeanVar::from_samples(all[29..].iter().copied()));
        assert_eq!(merged.count(), one_shot.count());
        let (a, b) = (merged.mean, one_shot.mean);
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        let (a, b) = (merged.m2, one_shot.m2);
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        assert_eq!(merged.min, one_shot.min);
        assert_eq!(merged.max, one_shot.max);
    }

    #[test]
    fn meanvar_merge_with_empty_is_identity() {
        let mut mv = MeanVar::from_samples([1.0, 2.0]);
        let snapshot = mv.clone();
        mv.merge(&MeanVar::new());
        assert_eq!(mv, snapshot);
        let mut empty = MeanVar::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn bucket_index_is_monotone_and_invertible() {
        let mut previous = 0u64;
        for micros in (0..4096u64).chain((1..30).map(|e| (1u64 << e) - 1)) {
            let index = bucket_index(micros);
            assert!(index >= previous || micros < previous, "{micros}");
            let lb = bucket_lower_bound(index);
            assert!(lb <= micros, "lower bound {lb} above sample {micros}");
            assert_eq!(bucket_index(lb), index, "lower bound maps back");
            previous = index;
        }
        // Exact region: values below 128 µs are their own bucket.
        for micros in 0..128u64 {
            assert_eq!(bucket_lower_bound(bucket_index(micros)), micros);
        }
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        for micros in [130u64, 1_000, 250_000, 1_000_000, 123_456_789] {
            let lb = bucket_lower_bound(bucket_index(micros));
            let err = (micros - lb) as f64 / micros as f64;
            assert!(err <= 1.0 / 64.0 + 1e-12, "{micros}: err {err}");
        }
    }

    #[test]
    fn quantile_is_exact_on_grid_values() {
        // 0.128 s = 128 000 µs etc. sit exactly on bucket lower bounds,
        // so the sketch reproduces exact nearest-rank quantiles.
        let samples = [0.000_064, 0.000_100, 0.128, 0.256, 0.512];
        let sketch = QuantileSketch::from_secs(samples);
        assert_eq!(sketch.quantile(0.0), Some(0.000_064));
        assert_eq!(sketch.quantile(0.4), Some(0.000_100)); // rank ⌈0.4·5⌉ = 2
        assert_eq!(sketch.quantile(0.5), Some(0.128)); // rank ⌈0.5·5⌉ = 3
        assert_eq!(sketch.quantile(0.8), Some(0.256)); // rank 4
        assert_eq!(sketch.quantile(1.0), Some(0.512));
    }

    #[test]
    fn quantile_respects_min_and_max_exactly() {
        let sketch = QuantileSketch::from_secs([0.333_333, 0.777_777]);
        assert_eq!(sketch.min_secs(), Some(0.333_333));
        assert_eq!(sketch.max_secs(), Some(0.777_777));
        assert_eq!(sketch.quantile(0.0), Some(0.333_333));
        assert_eq!(sketch.quantile(1.0), Some(0.777_777));
    }

    #[test]
    fn sketch_rejects_invalid_samples() {
        let sketch = QuantileSketch::from_secs([0.5, -1.0, f64::NAN, f64::INFINITY]);
        assert_eq!(sketch.count(), 1);
        assert_eq!(sketch.rejected, 3);
    }

    #[test]
    fn sketch_merge_is_bit_exact() {
        let all: Vec<f64> = (1..200).map(|i| i as f64 * 0.013).collect();
        let one_shot = QuantileSketch::from_secs(all.iter().copied());
        let mut ab = QuantileSketch::from_secs(all[..71].iter().copied());
        ab.merge(&QuantileSketch::from_secs(all[71..].iter().copied()));
        let mut ba = QuantileSketch::from_secs(all[71..].iter().copied());
        ba.merge(&QuantileSketch::from_secs(all[..71].iter().copied()));
        assert_eq!(ab, one_shot);
        assert_eq!(ba, one_shot);
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let sketch = QuantileSketch::new();
        assert!(sketch.is_empty());
        assert_eq!(sketch.quantile(0.5), None);
        assert_eq!(sketch.min_secs(), None);
        assert_eq!(sketch.max_secs(), None);
    }

    #[test]
    fn serde_roundtrip() {
        let sketch = QuantileSketch::from_secs([0.25, 1.5, 0.25]);
        let json = serde_json::to_string(&sketch).expect("serialise");
        let back: QuantileSketch = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, sketch);
        let mv = MeanVar::from_samples([0.25, 1.5]);
        let json = serde_json::to_string(&mv).expect("serialise");
        let back: MeanVar = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, mv);
    }
}
