//! The one audited seed-derivation path for replicated runs.
//!
//! Before this module every caller that needed "a different seed"
//! invented its own arithmetic (`base.seed + 1`, `seed ^= n`, …).
//! Those ad-hoc schemes collide silently — `base + 1` for one sweep is
//! `base ^ 1` for another — and nothing guarantees the derived seeds
//! are decorrelated. [`SeedSequence`] replaces them: replicate 0 is the
//! base seed itself (so a 1-replicate sequence is cache-compatible with
//! the unreplicated campaign), and higher replicates come from
//! [`stabl_sim::DetRng::derive`], the same SplitMix64 stream-splitting
//! the simulator already trusts for per-node streams.

use serde::{Deserialize, Serialize};
use stabl_sim::DetRng;

/// A deterministic sequence of decorrelated seeds derived from one
/// base seed.
///
/// # Examples
///
/// ```
/// use stabl_stats::SeedSequence;
///
/// let seq = SeedSequence::new(42);
/// assert_eq!(seq.seed(0), 42); // replicate 0 is the base itself
/// assert_ne!(seq.seed(1), seq.seed(2));
/// // The sequence is a pure function of (base, index):
/// assert_eq!(seq.seed(5), SeedSequence::new(42).seed(5));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeedSequence {
    /// The base seed the sequence is derived from.
    pub base: u64,
}

impl SeedSequence {
    /// A sequence rooted at `base`.
    pub fn new(base: u64) -> SeedSequence {
        SeedSequence { base }
    }

    /// The seed for replicate `index`.
    ///
    /// Index 0 returns the base seed unchanged, so single-replicate
    /// campaigns reuse cached unreplicated runs; every later index is
    /// an independent SplitMix64-derived stream seed.
    pub fn seed(&self, index: usize) -> u64 {
        if index == 0 {
            return self.base;
        }
        DetRng::new(self.base).derive(index as u64).next_u64()
    }

    /// The first `n` seeds of the sequence.
    pub fn seeds(&self, n: usize) -> Vec<u64> {
        (0..n).map(|i| self.seed(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn replicate_zero_is_the_base_seed() {
        assert_eq!(SeedSequence::new(0xB10C_7357).seed(0), 0xB10C_7357);
        assert_eq!(SeedSequence::new(0).seed(0), 0);
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        let seq = SeedSequence::new(42);
        let first = seq.seeds(64);
        let again = SeedSequence::new(42).seeds(64);
        assert_eq!(first, again, "sequence must be a pure function");
        let distinct: BTreeSet<u64> = first.iter().copied().collect();
        assert_eq!(distinct.len(), first.len(), "collision in first 64");
    }

    #[test]
    fn different_bases_diverge() {
        let a = SeedSequence::new(1).seeds(16);
        let b = SeedSequence::new(2).seeds(16);
        assert!(a.iter().zip(&b).all(|(x, y)| x != y));
    }

    #[test]
    fn serde_roundtrip() {
        let seq = SeedSequence::new(7);
        let json = serde_json::to_string(&seq).expect("serialise");
        let back: SeedSequence = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, seq);
    }
}
