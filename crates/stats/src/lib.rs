//! # stabl-stats — replication statistics for the Stabl campaigns
//!
//! The paper reports each sensitivity score from a single run and its
//! §8 limitations concede the numbers carry no variance estimate. The
//! simulator makes replication cheap, so this crate supplies the three
//! statistical layers the campaigns were missing:
//!
//! 1. **Mergeable summary sketches** ([`MeanVar`], [`QuantileSketch`]):
//!    single-pass mean/variance (Welford) and a deterministic
//!    fixed-bucket quantile sketch whose `merge` is associative and
//!    order-insensitive, so per-seed summaries fold into campaign
//!    summaries without re-touching raw samples.
//! 2. **Replication statistics** ([`SeedSequence`], [`MetricCi`],
//!    [`ReplicatedCell`]): one audited seed-derivation path fans a cell
//!    out over N seeds, and percentile-bootstrap confidence intervals
//!    ([`percentile_ci`]) summarise the per-seed scores. All resampling
//!    is driven by [`stabl_sim::DetRng`], so two runs with the same
//!    seed produce byte-identical artifacts.
//! 3. **The regression gate** ([`gate`]): diffs two campaign artifact
//!    trees (a committed golden tree vs a fresh run), classifies every
//!    metric shift as within-CI / suspect / regression and emits both a
//!    human report and a machine `BENCH_stats.json`. The `stabl-stats`
//!    binary wires this into CI.
//!
//! The crate is scanned by every `stabl-lint` rule family: no wall
//! clocks or ambient entropy (D-rules), no panics in library code
//! (R-rules) and every `Serialize` type is listed in the cache-schema
//! manifest (S-rules).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bootstrap;
pub mod gate;
mod replicate;
mod seed;
mod sketch;

pub use bootstrap::{percentile_ci, ConfidenceInterval, BOOTSTRAP_RESAMPLES, CI_ALPHA};
pub use replicate::{
    CellObservation, MetricCi, ReplicateScore, ReplicatedCampaign, ReplicatedCell,
};
pub use seed::SeedSequence;
pub use sketch::{MeanVar, QuantileSketch, SKETCH_SUB_BUCKET_BITS};
