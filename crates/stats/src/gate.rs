//! The paired regression gate: diffing a fresh replicated-campaign
//! artifact tree against a committed golden tree.
//!
//! For every `*_ci.json` artifact present in the golden tree the gate
//! parses both copies as [`ReplicatedCampaign`]s, pairs cells by
//! (chain, scenario) and classifies each metric's fresh point estimate
//! against the golden confidence interval:
//!
//! * **within-CI** — inside the golden 95 % interval (padded by
//!   [`GATE_EPSILON`] so exact replays never flag on rounding);
//! * **suspect** — outside the interval but inside the interval widened
//!   by the `slack` factor (default [`GATE_DEFAULT_SLACK`]) around its
//!   centre: worth a look, not a failure;
//! * **regression** — beyond even the widened band, or a structural
//!   change (liveness-loss count moved, artifact or cell missing).
//!
//! The gate is pure classification: it never exits the process itself.
//! The `stabl-stats` binary maps [`GateReport::worst`] to exit codes
//! (0 clean, 1 regression, 2 usage/IO error) so library code stays
//! free of `process::exit` per stabl-lint R-rules.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::bootstrap::ConfidenceInterval;
use crate::replicate::{MetricCi, ReplicatedCampaign, ReplicatedCell};

/// Widening factor for the suspect band: a fresh point may drift up to
/// 3× the golden interval's half-width from its centre before the
/// shift is called a regression rather than a suspect.
pub const GATE_DEFAULT_SLACK: f64 = 3.0;

/// Absolute padding added to both interval endpoints so byte-identical
/// replays (and sub-ulp serialisation round-trips) always pass.
pub const GATE_EPSILON: f64 = 1e-9;

/// Verdict string: the fresh value sits inside the golden CI.
pub const VERDICT_WITHIN: &str = "within-ci";
/// Verdict string: outside the CI but inside the slack-widened band.
pub const VERDICT_SUSPECT: &str = "suspect";
/// Verdict string: beyond the widened band or structurally changed.
pub const VERDICT_REGRESSION: &str = "regression";

/// One metric-level comparison between golden and fresh.
///
/// `verdict` is one of the `VERDICT_*` strings (a string rather than an
/// enum so the artifact stays a plain named-field struct for the
/// vendored serde derive).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricVerdict {
    /// Artifact file the cell came from, relative to the tree root.
    pub file: String,
    /// The cell's chain.
    pub chain: String,
    /// The cell's scenario.
    pub scenario: String,
    /// The compared metric (`"score"`, `"commit_ratio"`,
    /// `"mean_latency"`, or `"liveness"` / `"artifact"` for structural
    /// checks).
    pub metric: String,
    /// Golden point estimate, if the golden CI existed.
    pub golden: Option<f64>,
    /// Fresh point estimate, if the fresh CI existed.
    pub fresh: Option<f64>,
    /// Golden interval lower endpoint.
    pub lo: Option<f64>,
    /// Golden interval upper endpoint.
    pub hi: Option<f64>,
    /// One of [`VERDICT_WITHIN`], [`VERDICT_SUSPECT`],
    /// [`VERDICT_REGRESSION`].
    pub verdict: String,
    /// Human-readable explanation of the classification.
    pub detail: String,
}

/// Worker-pool utilisation folded out of a `*_telemetry.json` artefact
/// (the wall-clock sidecar the replicated-campaign binaries write next
/// to their determinism-gated campaign JSON).
///
/// Purely informational: utilisation never moves a gate verdict — it
/// rides along in `BENCH_stats.json` so a bench-trajectory reader can
/// spot pool starvation or straggler cells next to the statistics.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UtilizationSummary {
    /// Worker threads the batch used.
    pub workers: u64,
    /// Cells scheduled (cache probes included).
    pub cells: u64,
    /// Cells answered from the content-addressed cache.
    pub cache_hits: u64,
    /// Cells actually simulated.
    pub executed: u64,
    /// Wall-clock time of the whole batch, milliseconds.
    pub wall_ms: u64,
    /// Milliseconds workers spent busy, summed over all cells.
    pub busy_ms: u64,
    /// Fraction of pool capacity (`workers x wall_ms`) that was busy.
    pub utilization: f64,
    /// Label of the slowest executed cell, if any cell executed.
    pub slowest_cell: Option<String>,
    /// Worker-occupancy of that slowest cell, milliseconds.
    pub slowest_wall_ms: Option<u64>,
}

/// One cell of the telemetry sidecar (mirror of the bench crate's
/// `CellTelemetry`; a local mirror keeps the dependency arrow pointing
/// bench → stats).
#[derive(Clone, Debug, PartialEq, Deserialize)]
struct TelemetryCell {
    label: String,
    cached: bool,
    wall_ms: u64,
}

/// The telemetry sidecar itself (mirror of `EngineTelemetry`).
#[derive(Clone, Debug, PartialEq, Deserialize)]
struct TelemetryFile {
    cells: Vec<TelemetryCell>,
    cache_hits: u64,
    executed: u64,
    workers: u64,
    wall_ms: u64,
    utilization: f64,
}

/// Loads a `*_telemetry.json` sidecar and folds it into the
/// utilisation summary carried by [`GateReport`].
pub fn load_utilization(path: &Path) -> Result<UtilizationSummary, GateError> {
    let text = fs::read_to_string(path).map_err(|e| GateError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    })?;
    let telemetry: TelemetryFile = serde_json::from_str(&text).map_err(|e| GateError::Parse {
        path: path.to_path_buf(),
        message: e.to_string(),
    })?;
    let busy_ms = telemetry.cells.iter().map(|c| c.wall_ms).sum();
    // Slowest *executed* cell, ties broken by label so the summary is
    // deterministic for a fixed sidecar.
    let slowest = telemetry
        .cells
        .iter()
        .filter(|c| !c.cached)
        .max_by(|a, b| a.wall_ms.cmp(&b.wall_ms).then(b.label.cmp(&a.label)));
    Ok(UtilizationSummary {
        workers: telemetry.workers,
        cells: telemetry.cells.len() as u64,
        cache_hits: telemetry.cache_hits,
        executed: telemetry.executed,
        wall_ms: telemetry.wall_ms,
        busy_ms,
        utilization: telemetry.utilization,
        slowest_cell: slowest.map(|c| c.label.clone()),
        slowest_wall_ms: slowest.map(|c| c.wall_ms),
    })
}

/// The gate's aggregate result over two artifact trees.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GateReport {
    /// The slack factor the suspect band used.
    pub slack: f64,
    /// Artifact files compared.
    pub files: u64,
    /// Cells compared.
    pub cells: u64,
    /// Metric comparisons that were within-CI.
    pub within: u64,
    /// Metric comparisons classified suspect.
    pub suspect: u64,
    /// Metric comparisons classified regression.
    pub regressions: u64,
    /// Every metric-level verdict, in deterministic order.
    pub verdicts: Vec<MetricVerdict>,
    /// Worker-pool utilisation of the fresh run, when the caller passed
    /// a telemetry sidecar (`--telemetry`). Informational only: never
    /// contributes to the verdict counts above.
    pub utilization: Option<UtilizationSummary>,
}

impl GateReport {
    /// The worst verdict string present ([`VERDICT_WITHIN`] when the
    /// report is empty).
    pub fn worst(&self) -> &'static str {
        if self.regressions > 0 {
            VERDICT_REGRESSION
        } else if self.suspect > 0 {
            VERDICT_SUSPECT
        } else {
            VERDICT_WITHIN
        }
    }

    /// `true` if no comparison regressed.
    pub fn passed(&self) -> bool {
        self.regressions == 0
    }

    /// Renders the human report: a verdict table plus a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:<9} {:<13} {:<12} {:>10} {:>22} {}\n",
            "file", "chain", "scenario", "metric", "fresh", "golden 95% CI", "verdict"
        ));
        for v in &self.verdicts {
            let fresh = match v.fresh {
                Some(x) => format!("{x:.4}"),
                None => "-".to_owned(),
            };
            let interval = match (v.lo, v.hi) {
                (Some(lo), Some(hi)) => format!("[{lo:.4}, {hi:.4}]"),
                _ => "-".to_owned(),
            };
            let marker = match v.verdict.as_str() {
                VERDICT_WITHIN => "ok",
                VERDICT_SUSPECT => "SUSPECT",
                _ => "REGRESSION",
            };
            out.push_str(&format!(
                "{:<28} {:<9} {:<13} {:<12} {:>10} {:>22} {}\n",
                v.file, v.chain, v.scenario, v.metric, fresh, interval, marker
            ));
            if v.verdict != VERDICT_WITHIN {
                out.push_str(&format!("    ^ {}\n", v.detail));
            }
        }
        out.push_str(&format!(
            "gate: {} files, {} cells, {} within-CI, {} suspect, {} regressions => {}\n",
            self.files,
            self.cells,
            self.within,
            self.suspect,
            self.regressions,
            self.worst()
        ));
        if let Some(u) = &self.utilization {
            out.push_str(&format!(
                "pool: {} workers, {} cells ({} executed, {} cached), \
                 {} ms wall, utilization {:.1}%",
                u.workers,
                u.cells,
                u.executed,
                u.cache_hits,
                u.wall_ms,
                u.utilization * 100.0,
            ));
            if let (Some(label), Some(ms)) = (&u.slowest_cell, u.slowest_wall_ms) {
                out.push_str(&format!(", slowest cell {label} ({ms} ms)"));
            }
            out.push('\n');
        }
        out
    }

    fn count(&mut self, verdict: &str) {
        match verdict {
            VERDICT_WITHIN => self.within += 1,
            VERDICT_SUSPECT => self.suspect += 1,
            _ => self.regressions += 1,
        }
    }

    fn push(&mut self, verdict: MetricVerdict) {
        self.count(&verdict.verdict);
        self.verdicts.push(verdict);
    }
}

/// Errors the gate can hit while reading the two trees.
#[derive(Debug)]
pub enum GateError {
    /// A directory walk or file read failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error text.
        message: String,
    },
    /// An artifact file did not parse as a [`ReplicatedCampaign`].
    Parse {
        /// The path involved.
        path: PathBuf,
        /// The parser's error text.
        message: String,
    },
    /// The golden tree contained no `*_ci.json` artifacts at all.
    EmptyGolden {
        /// The golden tree root.
        path: PathBuf,
    },
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateError::Io { path, message } => {
                write!(f, "io error at {}: {message}", path.display())
            }
            GateError::Parse { path, message } => {
                write!(f, "cannot parse {}: {message}", path.display())
            }
            GateError::EmptyGolden { path } => {
                write!(f, "no *_ci.json artifacts under {}", path.display())
            }
        }
    }
}

impl std::error::Error for GateError {}

/// Classifies `fresh_point` against a golden interval.
fn classify(golden: &ConfidenceInterval, fresh_point: f64, slack: f64) -> &'static str {
    if fresh_point >= golden.lo - GATE_EPSILON && fresh_point <= golden.hi + GATE_EPSILON {
        return VERDICT_WITHIN;
    }
    let band = golden.widened(slack.max(1.0));
    if fresh_point >= band.lo - GATE_EPSILON && fresh_point <= band.hi + GATE_EPSILON {
        return VERDICT_SUSPECT;
    }
    VERDICT_REGRESSION
}

/// Compares one metric pair and appends the verdict to `report`.
fn compare_metric(
    report: &mut GateReport,
    file: &str,
    chain: &str,
    scenario: &str,
    golden: &MetricCi,
    fresh: &MetricCi,
    slack: f64,
) {
    let mut verdict = MetricVerdict {
        file: file.to_owned(),
        chain: chain.to_owned(),
        scenario: scenario.to_owned(),
        metric: golden.metric.clone(),
        golden: golden.ci.as_ref().map(|ci| ci.point),
        fresh: fresh.ci.as_ref().map(|ci| ci.point),
        lo: golden.ci.as_ref().map(|ci| ci.lo),
        hi: golden.ci.as_ref().map(|ci| ci.hi),
        verdict: VERDICT_WITHIN.to_owned(),
        detail: String::new(),
    };
    match (&golden.ci, &fresh.ci) {
        (None, None) => {
            verdict.detail = "metric absent in both trees (structurally infinite)".to_owned();
        }
        (Some(_), None) => {
            verdict.verdict = VERDICT_REGRESSION.to_owned();
            verdict.detail = "metric had a golden CI but no fresh samples".to_owned();
        }
        (None, Some(_)) => {
            verdict.verdict = VERDICT_SUSPECT.to_owned();
            verdict.detail =
                "metric gained fresh samples it lacked in golden (structure changed)".to_owned();
        }
        (Some(g), Some(f)) => {
            verdict.verdict = classify(g, f.point, slack).to_owned();
            if verdict.verdict != VERDICT_WITHIN {
                verdict.detail = format!(
                    "fresh point {:.6} outside golden 95% CI [{:.6}, {:.6}] (slack {slack})",
                    f.point, g.lo, g.hi
                );
            }
        }
    }
    report.push(verdict);
}

/// Compares one golden cell against its fresh counterpart, appending
/// metric verdicts (three CI metrics plus the liveness-count check).
pub fn compare_cells(
    report: &mut GateReport,
    file: &str,
    golden: &ReplicatedCell,
    fresh: &ReplicatedCell,
    slack: f64,
) {
    report.cells += 1;
    // Structural check first: the number of liveness-losing replicates
    // must match — a cell drifting between finite and infinite is a
    // behavioural change no interval can excuse.
    if golden.infinite != fresh.infinite {
        report.push(MetricVerdict {
            file: file.to_owned(),
            chain: golden.chain.clone(),
            scenario: golden.scenario.clone(),
            metric: "liveness".to_owned(),
            golden: Some(golden.infinite as f64),
            fresh: Some(fresh.infinite as f64),
            lo: None,
            hi: None,
            verdict: VERDICT_REGRESSION.to_owned(),
            detail: format!(
                "liveness-loss replicates moved: golden {} vs fresh {} (of {})",
                golden.infinite, fresh.infinite, golden.replicates
            ),
        });
    }
    compare_metric(
        report,
        file,
        &golden.chain,
        &golden.scenario,
        &golden.score,
        &fresh.score,
        slack,
    );
    compare_metric(
        report,
        file,
        &golden.chain,
        &golden.scenario,
        &golden.commit_ratio,
        &fresh.commit_ratio,
        slack,
    );
    compare_metric(
        report,
        file,
        &golden.chain,
        &golden.scenario,
        &golden.mean_latency,
        &fresh.mean_latency,
        slack,
    );
}

/// Compares two parsed campaigns, appending verdicts for every golden
/// cell (missing fresh cells regress).
pub fn compare_campaigns(
    report: &mut GateReport,
    file: &str,
    golden: &ReplicatedCampaign,
    fresh: &ReplicatedCampaign,
    slack: f64,
) {
    for golden_cell in &golden.cells {
        match fresh.cell(&golden_cell.chain, &golden_cell.scenario) {
            Some(fresh_cell) => compare_cells(report, file, golden_cell, fresh_cell, slack),
            None => {
                report.cells += 1;
                report.push(MetricVerdict {
                    file: file.to_owned(),
                    chain: golden_cell.chain.clone(),
                    scenario: golden_cell.scenario.clone(),
                    metric: "artifact".to_owned(),
                    golden: None,
                    fresh: None,
                    lo: None,
                    hi: None,
                    verdict: VERDICT_REGRESSION.to_owned(),
                    detail: "cell present in golden but missing from fresh artifact".to_owned(),
                });
            }
        }
    }
}

/// Recursively collects the relative paths of `*_ci.json` files under
/// `root`, sorted for deterministic report order.
fn collect_artifacts(root: &Path) -> Result<Vec<PathBuf>, GateError> {
    fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), GateError> {
        let entries = fs::read_dir(dir).map_err(|e| GateError::Io {
            path: dir.to_path_buf(),
            message: e.to_string(),
        })?;
        for entry in entries {
            let entry = entry.map_err(|e| GateError::Io {
                path: dir.to_path_buf(),
                message: e.to_string(),
            })?;
            let path = entry.path();
            if path.is_dir() {
                walk(root, &path, out)?;
            } else if path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with("_ci.json"))
            {
                if let Ok(rel) = path.strip_prefix(root) {
                    out.push(rel.to_path_buf());
                }
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn load_campaign(path: &Path) -> Result<ReplicatedCampaign, GateError> {
    let text = fs::read_to_string(path).map_err(|e| GateError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    })?;
    serde_json::from_str(&text).map_err(|e| GateError::Parse {
        path: path.to_path_buf(),
        message: e.to_string(),
    })
}

/// Diffs a fresh artifact tree against a golden tree.
///
/// Every `*_ci.json` under `golden_root` is compared against the file
/// at the same relative path under `fresh_root`; a missing fresh file
/// is a regression. Extra fresh artifacts are ignored (new figures are
/// not regressions).
pub fn compare_trees(
    golden_root: &Path,
    fresh_root: &Path,
    slack: f64,
) -> Result<GateReport, GateError> {
    let artifacts = collect_artifacts(golden_root)?;
    if artifacts.is_empty() {
        return Err(GateError::EmptyGolden {
            path: golden_root.to_path_buf(),
        });
    }
    let mut report = GateReport {
        slack,
        files: 0,
        cells: 0,
        within: 0,
        suspect: 0,
        regressions: 0,
        verdicts: Vec::new(),
        utilization: None,
    };
    for rel in artifacts {
        let rel_name = rel.display().to_string();
        report.files += 1;
        let fresh_path = fresh_root.join(&rel);
        if !fresh_path.exists() {
            report.push(MetricVerdict {
                file: rel_name.clone(),
                chain: String::new(),
                scenario: String::new(),
                metric: "artifact".to_owned(),
                golden: None,
                fresh: None,
                lo: None,
                hi: None,
                verdict: VERDICT_REGRESSION.to_owned(),
                detail: "artifact present in golden tree but missing from fresh tree".to_owned(),
            });
            continue;
        }
        let golden = load_campaign(&golden_root.join(&rel))?;
        let fresh = load_campaign(&fresh_path)?;
        compare_campaigns(&mut report, &rel_name, &golden, &fresh, slack);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replicate::CellObservation;

    fn cell(chain: &str, scenario: &str, scores: &[Option<f64>]) -> ReplicatedCell {
        let observations: Vec<CellObservation> = scores
            .iter()
            .enumerate()
            .map(|(i, s)| CellObservation {
                seed: i as u64,
                score: *s,
                improved: false,
                commit_ratio: if s.is_some() { 0.99 } else { 0.0 },
                mean_latency: s.map(|x| x * 0.1),
            })
            .collect();
        ReplicatedCell::from_observations(chain, scenario, &observations, 42)
    }

    fn fresh_report(slack: f64) -> GateReport {
        GateReport {
            slack,
            files: 0,
            cells: 0,
            within: 0,
            suspect: 0,
            regressions: 0,
            verdicts: Vec::new(),
            utilization: None,
        }
    }

    #[test]
    fn identical_cells_are_within_ci() {
        let golden = cell(
            "Redbelly",
            "crash",
            &[Some(1.0), Some(1.1), Some(0.9), Some(1.05)],
        );
        let mut report = fresh_report(GATE_DEFAULT_SLACK);
        compare_cells(
            &mut report,
            "f_ci.json",
            &golden,
            &golden,
            GATE_DEFAULT_SLACK,
        );
        assert_eq!(report.regressions, 0, "{}", report.render());
        assert_eq!(report.suspect, 0);
        assert_eq!(report.within, 3);
        assert_eq!(report.worst(), VERDICT_WITHIN);
        assert!(report.passed());
    }

    #[test]
    fn large_shift_regresses() {
        let golden = cell(
            "Redbelly",
            "crash",
            &[Some(1.0), Some(1.1), Some(0.9), Some(1.05)],
        );
        let fresh = cell(
            "Redbelly",
            "crash",
            &[Some(9.0), Some(9.1), Some(8.9), Some(9.05)],
        );
        let mut report = fresh_report(GATE_DEFAULT_SLACK);
        compare_cells(
            &mut report,
            "f_ci.json",
            &golden,
            &fresh,
            GATE_DEFAULT_SLACK,
        );
        assert!(report.regressions > 0, "{}", report.render());
        assert_eq!(report.worst(), VERDICT_REGRESSION);
        assert!(!report.passed());
    }

    #[test]
    fn small_shift_is_suspect_not_regression() {
        let golden = cell(
            "Redbelly",
            "crash",
            &[Some(1.0), Some(1.2), Some(0.8), Some(1.0)],
        );
        // Golden score CI is roughly [0.9, 1.1]; shift the mean just past
        // the boundary but well inside the 3x band.
        let fresh = cell(
            "Redbelly",
            "crash",
            &[Some(1.15), Some(1.35), Some(0.95), Some(1.15)],
        );
        let mut report = fresh_report(GATE_DEFAULT_SLACK);
        compare_cells(
            &mut report,
            "f_ci.json",
            &golden,
            &fresh,
            GATE_DEFAULT_SLACK,
        );
        let score = report
            .verdicts
            .iter()
            .find(|v| v.metric == "score")
            .expect("score verdict");
        assert_eq!(score.verdict, VERDICT_SUSPECT, "{}", report.render());
        assert_eq!(report.regressions, 0);
        assert!(report.passed(), "suspects alone do not fail the gate");
    }

    #[test]
    fn liveness_count_mismatch_regresses() {
        let golden = cell("Solana", "partition", &[Some(1.0), Some(1.1), None, None]);
        let fresh = cell(
            "Solana",
            "partition",
            &[Some(1.0), Some(1.1), Some(1.0), None],
        );
        let mut report = fresh_report(GATE_DEFAULT_SLACK);
        compare_cells(
            &mut report,
            "f_ci.json",
            &golden,
            &fresh,
            GATE_DEFAULT_SLACK,
        );
        let liveness = report
            .verdicts
            .iter()
            .find(|v| v.metric == "liveness")
            .expect("liveness verdict");
        assert_eq!(liveness.verdict, VERDICT_REGRESSION);
    }

    #[test]
    fn both_infinite_score_is_within() {
        let golden = cell("Aptos", "transient", &[None, None]);
        let mut report = fresh_report(GATE_DEFAULT_SLACK);
        compare_cells(
            &mut report,
            "f_ci.json",
            &golden,
            &golden,
            GATE_DEFAULT_SLACK,
        );
        assert_eq!(report.regressions, 0, "{}", report.render());
    }

    #[test]
    fn missing_fresh_cell_regresses() {
        let golden_campaign = ReplicatedCampaign {
            base_seed: 42,
            replicates: 4,
            horizon_secs: 20,
            cells: vec![cell("Redbelly", "crash", &[Some(1.0), Some(1.1)])],
        };
        let fresh_campaign = ReplicatedCampaign {
            base_seed: 42,
            replicates: 4,
            horizon_secs: 20,
            cells: Vec::new(),
        };
        let mut report = fresh_report(GATE_DEFAULT_SLACK);
        compare_campaigns(
            &mut report,
            "f_ci.json",
            &golden_campaign,
            &fresh_campaign,
            GATE_DEFAULT_SLACK,
        );
        assert!(report.regressions > 0);
    }

    #[test]
    fn utilization_summary_folds_telemetry_and_renders() {
        let dir = std::env::temp_dir().join(format!("stabl-gate-util-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("fig3_sensitivity_ci_telemetry.json");
        std::fs::write(
            &path,
            r#"{
                "cells": [
                    {"label": "Redbelly/crash", "cached": false, "wall_ms": 120},
                    {"label": "Solana/crash", "cached": false, "wall_ms": 340},
                    {"label": "Aptos/crash", "cached": true, "wall_ms": 1}
                ],
                "cache_hits": 1,
                "executed": 2,
                "workers": 4,
                "wall_ms": 400,
                "utilization": 0.288125
            }"#,
        )
        .expect("write telemetry");
        let summary = load_utilization(&path).expect("load telemetry");
        std::fs::remove_dir_all(&dir).ok();

        assert_eq!(summary.workers, 4);
        assert_eq!(summary.cells, 3);
        assert_eq!(summary.cache_hits, 1);
        assert_eq!(summary.executed, 2);
        assert_eq!(summary.busy_ms, 461);
        assert_eq!(summary.slowest_cell.as_deref(), Some("Solana/crash"));
        assert_eq!(summary.slowest_wall_ms, Some(340));

        let mut report = fresh_report(GATE_DEFAULT_SLACK);
        assert!(!report.render().contains("pool:"));
        report.utilization = Some(summary);
        let rendered = report.render();
        assert!(
            rendered.contains("pool: 4 workers, 3 cells (2 executed, 1 cached)"),
            "{rendered}"
        );
        assert!(
            rendered.contains("utilization 28.8%") && rendered.contains("Solana/crash (340 ms)"),
            "{rendered}"
        );

        // The summary survives the BENCH_stats.json round trip, and a
        // report written before the field existed still parses.
        let json = serde_json::to_string(&report).expect("serialise");
        let back: GateReport = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(report, back);
        let legacy: GateReport = serde_json::from_str(
            r#"{"slack": 3.0, "files": 0, "cells": 0, "within": 0,
                "suspect": 0, "regressions": 0, "verdicts": []}"#,
        )
        .expect("legacy report parses");
        assert_eq!(legacy.utilization, None);
    }

    #[test]
    fn classify_bands() {
        let ci = ConfidenceInterval {
            point: 1.0,
            lo: 0.9,
            hi: 1.1,
            n: 8,
        };
        assert_eq!(classify(&ci, 1.0, 3.0), VERDICT_WITHIN);
        assert_eq!(
            classify(&ci, 0.9, 3.0),
            VERDICT_WITHIN,
            "endpoints included"
        );
        assert_eq!(classify(&ci, 1.2, 3.0), VERDICT_SUSPECT);
        assert_eq!(classify(&ci, 2.0, 3.0), VERDICT_REGRESSION);
        // Zero-width interval (identical replicates): epsilon pad keeps
        // the exact replay within.
        let point = ConfidenceInterval {
            point: 3.0,
            lo: 3.0,
            hi: 3.0,
            n: 8,
        };
        assert_eq!(classify(&point, 3.0, 3.0), VERDICT_WITHIN);
        assert_eq!(classify(&point, 3.1, 3.0), VERDICT_REGRESSION);
    }
}
