//! Replication statistics: folding N per-seed observations of one
//! (chain, scenario) cell into a [`ReplicatedCell`] summary with
//! bootstrap confidence intervals.
//!
//! The bench crate owns the fan-out (it drives the worker pool and the
//! cache); this module owns what happens after the runs come back. A
//! cell's sensitivity score can be structurally infinite — a liveness
//! loss divides by a zero commit count — so a CI on the score alone
//! cannot be finite for every cell. [`ReplicatedCell`] therefore
//! reports three intervals: the score over the finite replicates, plus
//! commit ratio and mean latency, which are finite whenever anything
//! committed; the infinite replicate count is carried alongside so a
//! cell that flips between finite and infinite across seeds is visible
//! rather than averaged away.

use serde::{Deserialize, Serialize};
use stabl_sim::DetRng;

use crate::bootstrap::{percentile_ci, ConfidenceInterval};

/// FNV-1a hash of a label string, used to derive an independent
/// bootstrap stream per (cell, metric) without any ambient entropy.
fn label_hash(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for byte in part.bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        // Separator so ["ab","c"] and ["a","bc"] hash differently.
        h ^= 0x1F;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One replicate's raw observation of a (chain, scenario) cell.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellObservation {
    /// The seed this replicate ran under.
    pub seed: u64,
    /// The sensitivity score, `None` for a liveness violation (∞).
    pub score: Option<f64>,
    /// The altered environment improved on the baseline.
    pub improved: bool,
    /// Committed / submitted in the altered run, in `[0, 1]`.
    pub commit_ratio: f64,
    /// Mean commit latency (seconds) of the altered run, if anything
    /// committed.
    pub mean_latency: Option<f64>,
}

/// The per-replicate score record kept inside a [`ReplicatedCell`] so
/// artifacts stay auditable down to individual seeds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReplicateScore {
    /// The replicate's seed.
    pub seed: u64,
    /// The finite score, `None` for a liveness violation (∞).
    pub score: Option<f64>,
}

/// A bootstrap confidence interval on one metric of a replicated cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricCi {
    /// The metric name (`"score"`, `"commit_ratio"`, `"mean_latency"`).
    pub metric: String,
    /// The 95 % interval, `None` if no finite samples were available.
    pub ci: Option<ConfidenceInterval>,
    /// Finite samples the interval is built from.
    pub finite: u64,
}

/// The replicated summary of one (chain, scenario) cell: N seeds, three
/// bootstrap confidence intervals and the per-seed score trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReplicatedCell {
    /// The evaluated blockchain.
    pub chain: String,
    /// The adversarial scenario.
    pub scenario: String,
    /// Total replicates run.
    pub replicates: u64,
    /// Replicates whose sensitivity was infinite (liveness loss).
    pub infinite: u64,
    /// Replicates where the altered environment improved on baseline.
    pub improved: u64,
    /// CI on the sensitivity score over the finite replicates.
    pub score: MetricCi,
    /// CI on the altered run's commit ratio (finite for every run).
    pub commit_ratio: MetricCi,
    /// CI on the altered run's mean commit latency.
    pub mean_latency: MetricCi,
    /// The per-seed score trace, in replicate order.
    pub scores: Vec<ReplicateScore>,
}

/// Builds one metric's CI from its finite samples, deriving the
/// bootstrap stream from `(bootstrap_seed, chain, scenario, metric)` so
/// every interval is independent and byte-replayable.
fn metric_ci(
    metric: &str,
    samples: &[f64],
    chain: &str,
    scenario: &str,
    bootstrap_seed: u64,
) -> MetricCi {
    let mut rng = DetRng::new(bootstrap_seed).derive(label_hash(&[chain, scenario, metric]));
    MetricCi {
        metric: metric.to_owned(),
        ci: percentile_ci(samples, &mut rng),
        finite: samples.len() as u64,
    }
}

/// A whole replicated campaign: the artifact format written by the
/// `fig3_sensitivity_ci` binary and diffed by the regression gate.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReplicatedCampaign {
    /// The base seed the [`crate::SeedSequence`] was rooted at.
    pub base_seed: u64,
    /// Replicates run per cell.
    pub replicates: u64,
    /// Simulated horizon in seconds.
    pub horizon_secs: u64,
    /// One summary per (chain, scenario) cell, chain-major.
    pub cells: Vec<ReplicatedCell>,
}

impl ReplicatedCampaign {
    /// Looks up the cell for `(chain, scenario)`, if present.
    pub fn cell(&self, chain: &str, scenario: &str) -> Option<&ReplicatedCell> {
        self.cells
            .iter()
            .find(|c| c.chain == chain && c.scenario == scenario)
    }
}

impl ReplicatedCell {
    /// Folds the per-seed observations of one cell into a replicated
    /// summary. `bootstrap_seed` seeds the resampling streams (pass the
    /// campaign's base seed so the whole artifact is a pure function of
    /// it).
    pub fn from_observations(
        chain: &str,
        scenario: &str,
        observations: &[CellObservation],
        bootstrap_seed: u64,
    ) -> ReplicatedCell {
        let finite_scores: Vec<f64> = observations
            .iter()
            .filter_map(|o| o.score)
            .filter(|s| s.is_finite())
            .collect();
        let commit_ratios: Vec<f64> = observations.iter().map(|o| o.commit_ratio).collect();
        let mean_latencies: Vec<f64> = observations
            .iter()
            .filter_map(|o| o.mean_latency)
            .filter(|l| l.is_finite())
            .collect();
        ReplicatedCell {
            chain: chain.to_owned(),
            scenario: scenario.to_owned(),
            replicates: observations.len() as u64,
            infinite: observations.iter().filter(|o| o.score.is_none()).count() as u64,
            improved: observations.iter().filter(|o| o.improved).count() as u64,
            score: metric_ci("score", &finite_scores, chain, scenario, bootstrap_seed),
            commit_ratio: metric_ci(
                "commit_ratio",
                &commit_ratios,
                chain,
                scenario,
                bootstrap_seed,
            ),
            mean_latency: metric_ci(
                "mean_latency",
                &mean_latencies,
                chain,
                scenario,
                bootstrap_seed,
            ),
            scores: observations
                .iter()
                .map(|o| ReplicateScore {
                    seed: o.seed,
                    score: o.score,
                })
                .collect(),
        }
    }

    /// `true` if every replicate kept liveness (no infinite scores).
    pub fn all_finite(&self) -> bool {
        self.infinite == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(seed: u64, score: Option<f64>, ratio: f64) -> CellObservation {
        CellObservation {
            seed,
            score,
            improved: false,
            commit_ratio: ratio,
            mean_latency: Some(0.5),
        }
    }

    #[test]
    fn all_finite_cell_has_three_intervals() {
        let observations: Vec<CellObservation> = (0..8)
            .map(|i| obs(i, Some(1.0 + i as f64 * 0.01), 0.99))
            .collect();
        let cell = ReplicatedCell::from_observations("Redbelly", "crash", &observations, 42);
        assert_eq!(cell.replicates, 8);
        assert_eq!(cell.infinite, 0);
        assert!(cell.all_finite());
        for metric in [&cell.score, &cell.commit_ratio, &cell.mean_latency] {
            let ci = metric.ci.as_ref().expect("finite metric");
            assert!(ci.lo.is_finite() && ci.hi.is_finite());
            assert_eq!(metric.finite, 8);
        }
        assert_eq!(cell.scores.len(), 8);
    }

    #[test]
    fn infinite_replicates_are_counted_not_averaged() {
        let observations = vec![
            obs(0, Some(2.0), 0.9),
            obs(1, None, 0.0),
            obs(2, Some(2.2), 0.9),
            obs(3, None, 0.0),
        ];
        let cell = ReplicatedCell::from_observations("Solana", "partition", &observations, 42);
        assert_eq!(cell.infinite, 2);
        assert!(!cell.all_finite());
        assert_eq!(cell.score.finite, 2);
        assert!(cell.score.ci.is_some(), "score CI over finite replicates");
        // The commit-ratio CI always exists, even with liveness losses.
        assert_eq!(cell.commit_ratio.finite, 4);
        assert!(cell.commit_ratio.ci.is_some());
    }

    #[test]
    fn fully_infinite_cell_still_has_commit_ratio_ci() {
        let observations = vec![obs(0, None, 0.0), obs(1, None, 0.0)];
        let cell = ReplicatedCell::from_observations("Aptos", "transient", &observations, 42);
        assert_eq!(cell.infinite, 2);
        assert_eq!(cell.score.ci, None, "no finite scores to bootstrap");
        assert!(cell.commit_ratio.ci.is_some());
    }

    #[test]
    fn replay_is_byte_identical() {
        let observations: Vec<CellObservation> = (0..8)
            .map(|i| obs(i, Some((i as f64).sin() + 2.0), 0.95))
            .collect();
        let a = ReplicatedCell::from_observations("Algorand", "crash", &observations, 7);
        let b = ReplicatedCell::from_observations("Algorand", "crash", &observations, 7);
        let ja = serde_json::to_string(&a).expect("serialise");
        let jb = serde_json::to_string(&b).expect("serialise");
        assert_eq!(ja, jb);
    }

    #[test]
    fn metric_streams_are_independent() {
        // Same sample values for two metrics must not produce the same
        // resampling stream: the labels differ.
        let observations: Vec<CellObservation> = (0..6)
            .map(|i| CellObservation {
                seed: i,
                score: Some(0.5 + i as f64 * 0.1),
                improved: false,
                commit_ratio: 0.5 + i as f64 * 0.1,
                mean_latency: Some(0.5 + i as f64 * 0.1),
            })
            .collect();
        let cell = ReplicatedCell::from_observations("Avalanche", "crash", &observations, 1);
        let score = cell.score.ci.expect("score");
        let ratio = cell.commit_ratio.ci.expect("ratio");
        assert_eq!(score.point.to_bits(), ratio.point.to_bits());
        assert_ne!(
            (score.lo.to_bits(), score.hi.to_bits()),
            (ratio.lo.to_bits(), ratio.hi.to_bits()),
            "independent streams should bootstrap differently"
        );
    }

    #[test]
    fn label_hash_separates_boundaries() {
        assert_ne!(label_hash(&["ab", "c"]), label_hash(&["a", "bc"]));
        assert_ne!(label_hash(&["a"]), label_hash(&["a", ""]));
    }
}
