//! `stabl-stats` CLI: the statistical regression gate.
//!
//! ```text
//! stabl-stats gate --golden DIR --fresh DIR [--slack FACTOR] [--out FILE]
//!                  [--telemetry FILE]
//! ```
//!
//! Diffs every `*_ci.json` replicated-campaign artifact under the
//! golden tree against the file at the same relative path under the
//! fresh tree, prints the human verdict table, and (with `--out`)
//! writes the machine-readable `BENCH_stats.json` gate report.
//!
//! With `--telemetry` the fresh run's `*_telemetry.json` wall-clock
//! sidecar is folded into the report as a worker-pool utilisation
//! summary — informational only, it never moves the verdict.
//!
//! Exit codes: 0 clean (within-CI and suspects only), 1 at least one
//! regression, 2 usage or I/O error.

use std::path::PathBuf;
use std::process;

use stabl_stats::gate::{compare_trees, load_utilization, GATE_DEFAULT_SLACK};

struct Args {
    golden: PathBuf,
    fresh: PathBuf,
    slack: f64,
    out: Option<PathBuf>,
    telemetry: Option<PathBuf>,
}

const USAGE: &str = "stabl-stats gate --golden DIR --fresh DIR [--slack FACTOR] [--out FILE] \
                     [--telemetry FILE]";

fn parse_args() -> Result<Args, String> {
    let mut it = std::env::args().skip(1);
    match it.next().as_deref() {
        Some("gate") => {}
        Some("--help") | Some("-h") => {
            println!("{USAGE}");
            process::exit(0);
        }
        other => return Err(format!("expected the `gate` subcommand, got {other:?}")),
    }
    let mut golden = None;
    let mut fresh = None;
    let mut slack = GATE_DEFAULT_SLACK;
    let mut out = None;
    let mut telemetry = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--golden" => {
                golden = Some(PathBuf::from(
                    it.next().ok_or("--golden needs a directory")?,
                ))
            }
            "--fresh" => fresh = Some(PathBuf::from(it.next().ok_or("--fresh needs a directory")?)),
            "--slack" => {
                let raw = it.next().ok_or("--slack needs a factor")?;
                slack = raw
                    .parse::<f64>()
                    .map_err(|_| format!("--slack expects a number, got `{raw}`"))?;
                if !slack.is_finite() || slack < 1.0 {
                    return Err(format!("--slack must be a finite factor >= 1, got {slack}"));
                }
            }
            "--out" => out = Some(PathBuf::from(it.next().ok_or("--out needs a file")?)),
            "--telemetry" => {
                telemetry = Some(PathBuf::from(it.next().ok_or("--telemetry needs a file")?))
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args {
        golden: golden.ok_or("--golden is required")?,
        fresh: fresh.ok_or("--fresh is required")?,
        slack,
        out,
        telemetry,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("stabl-stats: {msg}");
            eprintln!("usage: {USAGE}");
            process::exit(2);
        }
    };

    let mut report = match compare_trees(&args.golden, &args.fresh, args.slack) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("stabl-stats: {e}");
            process::exit(2);
        }
    };

    if let Some(telemetry) = &args.telemetry {
        match load_utilization(telemetry) {
            Ok(summary) => report.utilization = Some(summary),
            Err(e) => {
                eprintln!("stabl-stats: {e}");
                process::exit(2);
            }
        }
    }

    print!("{}", report.render());

    if let Some(out) = &args.out {
        let json = match serde_json::to_string_pretty(&report) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("stabl-stats: cannot serialise gate report: {e}");
                process::exit(2);
            }
        };
        if let Err(e) = std::fs::write(out, json + "\n") {
            eprintln!("stabl-stats: cannot write {}: {e}", out.display());
            process::exit(2);
        }
        println!("wrote {}", out.display());
    }

    if !report.passed() {
        process::exit(1);
    }
}
