//! Percentile-bootstrap confidence intervals on replicate means.
//!
//! With N replicate scores per cell (N ≈ 8) a normal-theory interval
//! would lean on asymptotics the sample cannot support, so the gate
//! uses the percentile bootstrap instead: resample the N scores with
//! replacement [`BOOTSTRAP_RESAMPLES`] times, take the mean of each
//! resample, and read the interval off the empirical quantiles of those
//! means. Resampling indices come from [`stabl_sim::DetRng`] — never an
//! ambient RNG — so the interval is a pure function of (samples, seed)
//! and replays byte-identically, which the proptests pin via
//! `f64::to_bits`.

use serde::{Deserialize, Serialize};
use stabl_sim::DetRng;

/// Bootstrap resamples drawn per interval. 1000 keeps the Monte-Carlo
/// error on a 95 % endpoint well under the seed-to-seed spread while
/// costing microseconds per cell.
pub const BOOTSTRAP_RESAMPLES: usize = 1000;

/// Two-sided significance level: `0.05` gives 95 % intervals.
pub const CI_ALPHA: f64 = 0.05;

/// A two-sided percentile-bootstrap confidence interval on a mean.
///
/// # Examples
///
/// ```
/// use stabl_sim::DetRng;
/// use stabl_stats::percentile_ci;
///
/// let scores = [1.0, 1.1, 0.9, 1.05, 0.95, 1.02, 0.98, 1.0];
/// let ci = percentile_ci(&scores, &mut DetRng::new(42)).expect("non-empty");
/// assert!(ci.lo <= ci.point && ci.point <= ci.hi);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// The point estimate: the plain mean of the samples.
    pub point: f64,
    /// Lower endpoint (the `α/2` quantile of the resample means).
    pub lo: f64,
    /// Upper endpoint (the `1 − α/2` quantile of the resample means).
    pub hi: f64,
    /// Samples the interval was computed from.
    pub n: u64,
}

impl ConfidenceInterval {
    /// Whether `value` lies inside the closed interval `[lo, hi]`.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo && value <= self.hi
    }

    /// The interval width `hi − lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// The same interval widened by `slack` (≥ 1) around its centre;
    /// used by the regression gate's suspect band.
    pub fn widened(&self, slack: f64) -> ConfidenceInterval {
        let centre = (self.lo + self.hi) / 2.0;
        let half = (self.hi - self.lo) / 2.0 * slack;
        ConfidenceInterval {
            point: self.point,
            lo: centre - half,
            hi: centre + half,
            n: self.n,
        }
    }
}

/// Nearest-rank quantile of a sorted slice (same rank rule as the
/// simulator's `Ecdf`): rank `⌈q·n⌉` clamped to `[1, n]`, 1-indexed.
fn sorted_quantile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Computes a 95 % percentile-bootstrap confidence interval on the mean
/// of `samples`, drawing resample indices from `rng`.
///
/// Returns `None` if `samples` is empty or contains a non-finite value
/// (the caller is expected to have filtered structural infinities —
/// e.g. liveness-loss sensitivity scores — before bootstrapping).
/// With a single sample the interval degenerates to a point.
pub fn percentile_ci(samples: &[f64], rng: &mut DetRng) -> Option<ConfidenceInterval> {
    if samples.is_empty() || samples.iter().any(|x| !x.is_finite()) {
        return None;
    }
    let n = samples.len();
    let point = samples.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return Some(ConfidenceInterval {
            point,
            lo: point,
            hi: point,
            n: 1,
        });
    }
    let mut means = Vec::with_capacity(BOOTSTRAP_RESAMPLES);
    for _ in 0..BOOTSTRAP_RESAMPLES {
        let mut sum = 0.0;
        for _ in 0..n {
            sum += samples[rng.next_below(n as u64) as usize];
        }
        means.push(sum / n as f64);
    }
    means.sort_by(f64::total_cmp);
    let lo = sorted_quantile(&means, CI_ALPHA / 2.0)?;
    let hi = sorted_quantile(&means, 1.0 - CI_ALPHA / 2.0)?;
    Some(ConfidenceInterval {
        point,
        lo,
        hi,
        n: n as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_non_finite_yield_none() {
        let mut rng = DetRng::new(1);
        assert_eq!(percentile_ci(&[], &mut rng), None);
        assert_eq!(percentile_ci(&[1.0, f64::NAN], &mut rng), None);
        assert_eq!(percentile_ci(&[f64::INFINITY], &mut rng), None);
    }

    #[test]
    fn single_sample_degenerates_to_a_point() {
        let mut rng = DetRng::new(1);
        let ci = percentile_ci(&[2.5], &mut rng).expect("one sample");
        assert_eq!((ci.lo, ci.point, ci.hi, ci.n), (2.5, 2.5, 2.5, 1));
    }

    #[test]
    fn interval_brackets_the_mean_and_spans_the_spread() {
        let samples = [1.0, 1.2, 0.8, 1.1, 0.9, 1.05, 0.95, 1.0];
        let mut rng = DetRng::new(42);
        let ci = percentile_ci(&samples, &mut rng).expect("samples");
        assert!(ci.lo <= ci.point && ci.point <= ci.hi);
        assert!(ci.width() > 0.0);
        // The interval on the mean must be narrower than the data range.
        assert!(ci.width() < 0.4, "width {}", ci.width());
        assert_eq!(ci.n, 8);
    }

    #[test]
    fn identical_samples_give_zero_width() {
        let mut rng = DetRng::new(7);
        let ci = percentile_ci(&[3.0; 8], &mut rng).expect("samples");
        assert_eq!((ci.lo, ci.hi), (3.0, 3.0));
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let samples = [0.3, 0.6, 0.1, 0.9, 0.5];
        let a = percentile_ci(&samples, &mut DetRng::new(99)).expect("a");
        let b = percentile_ci(&samples, &mut DetRng::new(99)).expect("b");
        assert_eq!(a.lo.to_bits(), b.lo.to_bits());
        assert_eq!(a.hi.to_bits(), b.hi.to_bits());
        assert_eq!(a.point.to_bits(), b.point.to_bits());
    }

    #[test]
    fn widened_preserves_centre() {
        let ci = ConfidenceInterval {
            point: 1.0,
            lo: 0.8,
            hi: 1.2,
            n: 8,
        };
        let wide = ci.widened(3.0);
        assert!((wide.lo - 0.4).abs() < 1e-12);
        assert!((wide.hi - 1.6).abs() < 1e-12);
        assert!(wide.contains(ci.lo) && wide.contains(ci.hi));
    }

    #[test]
    fn contains_is_closed() {
        let ci = ConfidenceInterval {
            point: 1.0,
            lo: 0.5,
            hi: 1.5,
            n: 4,
        };
        assert!(ci.contains(0.5) && ci.contains(1.5));
        assert!(!ci.contains(0.499) && !ci.contains(1.501));
    }
}
