//! # stabl-algorand — a simulated Algorand validator
//!
//! Models the Algorand blockchain (v3.22.0 in the paper) for the Stabl
//! fault-tolerance study:
//!
//! * **Cryptographic sortition** ([`sortition`]) — proposers are drawn
//!   per (round, attempt) from a VRF-lite; crashed nodes keep being
//!   selected, which is what slows rounds down under crashes (paper §4).
//! * **BA★ agreement** — proposal filtering, soft votes and locked cert
//!   votes with a 90 % quorum: one crash (`f = t`) is tolerated, two
//!   (`f = t + 1`, 20 % offline) stall liveness until the nodes return.
//! * **Dynamic round time** — the filter timeout shrinks on fast rounds
//!   and resets to its default whenever a round needs a recovery
//!   attempt, producing the paper's periodic latency spikes under
//!   crashes and the warm-up throughput ramp in the baseline.
//! * **Gossip + reconnect backoff** — push gossip for transactions and a
//!   slow dial schedule that reproduces the ≈99 s partition recovery
//!   (§6) versus the fast active reconnect after restarts (≈9 s, §5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod node;
pub mod sortition;

pub use config::AlgorandConfig;
pub use node::{AlgorandMsg, AlgorandNode, AlgorandTimer};

/// [`AlgorandNode`] wrapped with message-level Byzantine behaviors
/// (mutate, equivocate, delay, withhold) for selected nodes; configure
/// via [`AlgorandConfig::with_byzantine`].
pub type ByzantineAlgorandNode = stabl_sim::ByzantineWrapper<AlgorandNode>;
