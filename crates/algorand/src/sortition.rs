//! Cryptographic sortition through a VRF-lite.
//!
//! Algorand selects block proposers (and committee members) by having
//! each account evaluate a Verifiable Random Function over the round
//! seed; selection is private until revealed and verifiable afterwards.
//! The Stabl experiments never attack the VRF, so the model keeps its
//! *distributional* behaviour — an unpredictable, per-(round, attempt,
//! node) pseudo-random draw that every node can verify — using SHA-256
//! over the public round coordinates. Crucially, crashed nodes keep
//! being selected (the schedule cannot observe liveness), which is what
//! makes rounds slow down under crash faults (paper §4).

use stabl_sim::NodeId;
use stabl_types::Sha256;

/// The sortition hash for `(round, attempt, node)`: a uniform `u64`.
fn draw(seed: u64, round: u64, attempt: u64, node: NodeId) -> u64 {
    let mut hasher = Sha256::new();
    hasher.update(b"algorand-sortition-v1");
    hasher.update(&seed.to_be_bytes());
    hasher.update(&round.to_be_bytes());
    hasher.update(&attempt.to_be_bytes());
    hasher.update(&node.as_u32().to_be_bytes());
    hasher.finalize().prefix_u64()
}

/// `true` if `node` is selected as a block proposer for the attempt.
///
/// Selection happens with probability `proposer_permille / 1000`,
/// independently per node — so an attempt can have zero proposers (the
/// round then times out and retries) or several (priority breaks ties).
pub fn is_proposer(
    seed: u64,
    round: u64,
    attempt: u64,
    node: NodeId,
    proposer_permille: u32,
) -> bool {
    let threshold = (u64::MAX / 1000) * proposer_permille as u64;
    draw(seed, round, attempt, node) < threshold
}

/// The proposal priority of a selected proposer (lower wins), derived
/// from the same VRF output.
pub fn priority(seed: u64, round: u64, attempt: u64, node: NodeId) -> u64 {
    draw(seed, round, attempt, node)
}

/// The proposer priority everybody should prefer for an attempt, over an
/// `n`-node network: the selected node with the lowest draw, if any.
pub fn best_proposer(
    seed: u64,
    round: u64,
    attempt: u64,
    n: usize,
    proposer_permille: u32,
) -> Option<NodeId> {
    NodeId::all(n)
        .filter(|&node| is_proposer(seed, round, attempt, node, proposer_permille))
        .min_by_key(|&node| priority(seed, round, attempt, node))
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Sortition is a pure function of its coordinates.
        #[test]
        fn sortition_is_deterministic(
            seed in proptest::num::u64::ANY,
            round in 0u64..10_000,
            attempt in 0u64..8,
            node in 0u32..32,
        ) {
            let a = is_proposer(seed, round, attempt, NodeId::new(node), 300);
            let b = is_proposer(seed, round, attempt, NodeId::new(node), 300);
            prop_assert_eq!(a, b);
            prop_assert_eq!(
                priority(seed, round, attempt, NodeId::new(node)),
                priority(seed, round, attempt, NodeId::new(node))
            );
        }

        /// A higher selection probability can only select more nodes.
        #[test]
        fn selection_is_monotone_in_probability(
            round in 0u64..2_000,
            node in 0u32..16,
        ) {
            let loose = is_proposer(7, round, 0, NodeId::new(node), 900);
            let tight = is_proposer(7, round, 0, NodeId::new(node), 100);
            if tight {
                prop_assert!(loose, "p=0.1 selected but p=0.9 did not");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draw_is_deterministic_and_spread() {
        assert_eq!(draw(1, 2, 3, NodeId::new(4)), draw(1, 2, 3, NodeId::new(4)));
        assert_ne!(draw(1, 2, 3, NodeId::new(4)), draw(1, 2, 3, NodeId::new(5)));
        assert_ne!(draw(1, 2, 3, NodeId::new(4)), draw(1, 3, 3, NodeId::new(4)));
        assert_ne!(draw(1, 2, 3, NodeId::new(4)), draw(1, 2, 4, NodeId::new(4)));
        assert_ne!(draw(1, 2, 3, NodeId::new(4)), draw(2, 2, 3, NodeId::new(4)));
    }

    #[test]
    fn selection_rate_matches_probability() {
        let mut selected = 0u32;
        let trials = 20_000;
        for round in 0..trials / 10 {
            for node in 0..10 {
                if is_proposer(7, round, 0, NodeId::new(node), 300) {
                    selected += 1;
                }
            }
        }
        let rate = selected as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.02, "selection rate {rate}");
    }

    #[test]
    fn best_proposer_is_a_selected_minimum() {
        for round in 0..200 {
            if let Some(best) = best_proposer(7, round, 0, 10, 300) {
                assert!(is_proposer(7, round, 0, best, 300));
                for node in NodeId::all(10) {
                    if is_proposer(7, round, 0, node, 300) {
                        assert!(
                            priority(7, round, 0, best) <= priority(7, round, 0, node),
                            "round {round}: {best} not minimal"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn some_attempts_have_no_proposer() {
        // With p = 0.3 and 10 nodes, ~2.8 % of attempts select nobody;
        // over 2000 attempts we must observe at least a few.
        let empty = (0..2000)
            .filter(|&r| best_proposer(7, r, 0, 10, 300).is_none())
            .count();
        assert!(empty > 10, "expected empty attempts, got {empty}");
        assert!(empty < 200, "far too many empty attempts: {empty}");
    }

    #[test]
    fn attempts_redraw_proposers() {
        // A round with no proposer at attempt 0 usually finds one at a
        // later attempt.
        let mut recovered = 0;
        let mut empties = 0;
        for r in 0..2000 {
            if best_proposer(7, r, 0, 10, 300).is_none() {
                empties += 1;
                if best_proposer(7, r, 1, 10, 300).is_some() {
                    recovered += 1;
                }
            }
        }
        assert!(empties > 0);
        assert!(
            recovered * 10 >= empties * 9,
            "{recovered}/{empties} recovered"
        );
    }
}
