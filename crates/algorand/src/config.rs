//! Configuration of the simulated Algorand validator.

use stabl_sim::{ConnConfig, SimDuration};

/// Tunables of the BA★ agreement, cryptographic sortition, dynamic round
/// time and networking of a simulated Algorand validator.
///
/// Defaults model Algorand v3.22.0 (with Dynamic Round Time) at the scale
/// of the Stabl testbed. The connection parameters produce the ≈99 s
/// partition recovery of the paper's §6 (20 s idle teardown, 30 s-base
/// doubling dial backoff).
#[derive(Clone, Debug)]
pub struct AlgorandConfig {
    /// Maximum transactions per proposed block.
    pub max_block_txs: usize,
    /// Transaction pool capacity.
    pub pool_capacity: usize,
    /// Probability (in 2^-64 units of the VRF hash space) that a node is
    /// selected as block proposer in a given attempt, expressed per-mille.
    pub proposer_permille: u32,
    /// Votes required for soft- and cert-quorums, as per-mille of `n`
    /// (810 ⇒ ⌈0.81·n⌉: tolerates `⌈n/5⌉−1` crashes and stalls one
    /// failure later — Algorand's >80 %-online liveness threshold at
    /// every network size).
    pub quorum_permille: u32,
    /// Default (cold) filter timeout the dynamic round time starts from
    /// and resets to after a slow round.
    pub default_filter: SimDuration,
    /// Smallest filter timeout the dynamic round time converges to.
    pub min_filter: SimDuration,
    /// Multiplier (per-mille) applied to the filter after each fast
    /// round (< 1000 shrinks it toward `min_filter`).
    pub filter_shrink_permille: u32,
    /// Pacing: minimum interval between consecutive BA★ rounds (block
    /// time).
    pub round_interval: SimDuration,
    /// After a slow round, the fast proposal path stays disabled for
    /// this many rounds (the "reset to default parameters" behaviour of
    /// Dynamic Round Time).
    pub conservative_rounds: u64,
    /// Attempt (recovery) timeout: a round attempt that has not certified
    /// a block by then re-runs sortition with reset timing parameters.
    pub attempt_timeout: SimDuration,
    /// Pull-gossip round period (each round asks one random peer for
    /// missing transactions).
    pub pull_interval: SimDuration,
    /// Maximum transactions per pull-gossip response.
    pub pull_batch: usize,
    /// Execution cost per committed transaction.
    pub exec_per_tx: SimDuration,
    /// Fixed execution cost per committed block.
    pub exec_per_block: SimDuration,
    /// Connection management.
    pub conn: ConnConfig,
    /// Connection-manager tick period.
    pub conn_tick: SimDuration,
    /// Models production-shaped contention: funds the whole declared
    /// account population lazily instead of the paper's 256 prefunded
    /// accounts. Off by default so paper-standard runs are
    /// byte-identical.
    pub model_contention: bool,
}

impl Default for AlgorandConfig {
    fn default() -> Self {
        AlgorandConfig {
            max_block_txs: 1_500,
            pool_capacity: 200_000,
            proposer_permille: 300,
            quorum_permille: 810,
            default_filter: SimDuration::from_millis(2_000),
            min_filter: SimDuration::from_millis(300),
            filter_shrink_permille: 850,
            round_interval: SimDuration::from_millis(1_000),
            conservative_rounds: 3,
            attempt_timeout: SimDuration::from_secs(4),
            pull_interval: SimDuration::from_millis(3_000),
            pull_batch: 512,
            exec_per_tx: SimDuration::from_micros(400),
            exec_per_block: SimDuration::from_millis(5),
            conn: ConnConfig {
                idle_timeout: SimDuration::from_secs(20),
                heartbeat_interval: SimDuration::from_secs(8),
                backoff_base: SimDuration::from_secs(30),
                backoff_factor_permille: 2_000,
                backoff_cap: SimDuration::from_secs(240),
            },
            conn_tick: SimDuration::from_millis(1_000),
            model_contention: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_consistent() {
        let cfg = AlgorandConfig::default();
        assert!(cfg.min_filter < cfg.default_filter);
        assert!(cfg.default_filter < cfg.attempt_timeout);
        assert!(cfg.round_interval < cfg.attempt_timeout);
        assert!(cfg.conservative_rounds > 0);
        assert!(cfg.pull_batch > 0 && cfg.pull_interval > cfg.min_filter);
        assert!(cfg.filter_shrink_permille < 1_000);
        assert!(cfg.quorum_permille > 667, "BFT quorum above two thirds");
        // The threshold must sit exactly between f = t (live) and
        // f = t + 1 (stalled) at the paper's scale and beyond.
        for n in [10usize, 16, 22] {
            let quorum = (n * cfg.quorum_permille as usize).div_ceil(1000);
            let t = n.div_ceil(5) - 1;
            assert!(n - t >= quorum, "n={n}: f=t crashes must keep a quorum");
            assert!(n - t - 1 < quorum, "n={n}: f=t+1 must stall");
        }
        assert!(cfg.proposer_permille > 0 && cfg.proposer_permille < 1_000);
    }
}

impl AlgorandConfig {
    /// Pairs this config with a Byzantine spec, producing the config of
    /// [`ByzantineAlgorandNode`](crate::ByzantineAlgorandNode): the named
    /// nodes run the same protocol but mutate, equivocate, delay or
    /// withhold their outbound messages.
    pub fn with_byzantine(
        self,
        spec: stabl_sim::ByzantineSpec,
    ) -> stabl_sim::ByzConfig<AlgorandConfig> {
        stabl_sim::ByzConfig::new(self, spec)
    }
}
