//! The simulated Algorand validator: BA★ rounds driven by cryptographic
//! sortition, soft/cert vote steps, dynamic round time and gossip.

use std::collections::{BTreeMap, BTreeSet};

use stabl_sim::{
    ConnAction, ConnectionManager, ContentionStats, Ctx, NodeId, Protocol, SimDuration, SimTime,
};
use stabl_types::{AccountPool, Block, Hash32, Ledger, Transaction, TxId};

use crate::{sortition, AlgorandConfig};

/// Wire messages of the simulated Algorand network.
#[derive(Clone, Debug)]
pub enum AlgorandMsg {
    /// Push-gossip of a pending transaction.
    TxGossip(Transaction),
    /// A sortition-selected proposer's block for (round, attempt).
    Proposal {
        /// BA★ round (equals the chain height being decided).
        round: u64,
        /// Recovery attempt within the round.
        attempt: u64,
        /// The proposer's VRF priority (lower wins).
        priority: u64,
        /// The proposed block.
        block: Block,
    },
    /// Soft vote for the best proposal of the round.
    SoftVote {
        /// BA★ round.
        round: u64,
        /// Hash of the supported block.
        hash: Hash32,
    },
    /// Certifying vote once a soft quorum was observed.
    CertVote {
        /// BA★ round.
        round: u64,
        /// Hash of the certified block.
        hash: Hash32,
    },
    /// Catch-up request from a recovering or lagging node.
    SyncRequest {
        /// First height the requester is missing.
        from_height: u64,
    },
    /// Catch-up response with committed blocks.
    SyncResponse {
        /// Consecutive committed blocks.
        blocks: Vec<Block>,
    },
    /// Pull-gossip request: "here is my pool frontier, send me what I
    /// am missing".
    PullRequest {
        /// Per-account first-missing-nonce of the requester.
        frontier: Vec<(stabl_types::AccountId, u64)>,
    },
    /// Pull-gossip response with the missing transactions.
    PullResponse {
        /// The transactions the requester lacked.
        txs: Vec<Transaction>,
    },
    /// Connection keep-alive.
    Heartbeat,
    /// Reconnection attempt.
    Dial,
    /// Reconnection acknowledgement.
    DialAck,
}

/// Timer tokens of the Algorand node.
#[derive(Clone, Debug)]
pub enum AlgorandTimer {
    /// Paced start of a round (block-time pacing).
    Begin {
        /// The round to start.
        round: u64,
    },
    /// Filter-step deadline: soft-vote the best proposal received.
    Filter {
        /// Round the timer was armed in.
        round: u64,
        /// Attempt the timer was armed in.
        attempt: u64,
    },
    /// Recovery deadline: re-run sortition with reset timing parameters.
    Attempt {
        /// Round the timer was armed in.
        round: u64,
        /// Attempt the timer was armed in.
        attempt: u64,
    },
    /// Block execution completion.
    ExecDone,
    /// Periodic pull-gossip round.
    PullTick,
    /// Periodic connection-manager tick.
    ConnTick,
}

/// A simulated Algorand validator node.
#[derive(Debug)]
pub struct AlgorandNode {
    id: NodeId,
    n: usize,
    config: AlgorandConfig,
    seed: u64,
    // Durable state.
    chain: Vec<Block>,
    ledger: Ledger,
    executed_height: u64,
    // Round state (volatile).
    round: u64,
    attempt: u64,
    round_start: SimTime,
    /// Dynamic round time: the current filter timeout.
    dyn_filter: SimDuration,
    best_proposal: Option<(u64, Hash32)>,
    blocks_by_hash: BTreeMap<Hash32, Block>,
    soft_voted_attempt: Option<u64>,
    soft_votes: BTreeMap<Hash32, BTreeSet<NodeId>>,
    cert_voted: Option<Hash32>,
    cert_votes: BTreeMap<Hash32, BTreeSet<NodeId>>,
    /// Rounds after which the fast proposal path is re-enabled.
    conservative_until: u64,
    /// Number of rounds that needed a recovery attempt or missed their
    /// expected proposer (diagnostics).
    slow_rounds: u64,
    // Execution pipeline.
    exec_busy_until: SimTime,
    exec_queue: Vec<(u64, SimTime)>,
    // Pool and networking.
    pool: AccountPool,
    conn: ConnectionManager,
}

impl AlgorandNode {
    fn quorum(&self) -> usize {
        (self.n * self.config.quorum_permille as usize).div_ceil(1000)
    }

    /// The committed chain height.
    pub fn chain_height(&self) -> u64 {
        self.chain.len() as u64
    }

    /// The height up to which blocks are executed.
    pub fn executed_height(&self) -> u64 {
        self.executed_height
    }

    /// Pending pool transactions.
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// The node's ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The BA★ round in progress.
    pub fn current_round(&self) -> u64 {
        self.round
    }

    /// The current dynamic filter timeout (shrinks on fast rounds,
    /// resets to the default on slow ones).
    pub fn current_filter(&self) -> SimDuration {
        self.dyn_filter
    }

    /// Rounds that needed at least one recovery attempt.
    pub fn slow_rounds(&self) -> u64 {
        self.slow_rounds
    }

    fn enter_round(&mut self, round: u64, ctx: &mut Ctx<'_, Self>) {
        ctx.span("ba-round");
        ctx.gauge("round", round);
        ctx.gauge("mempool_depth", self.pool.len() as u64);
        ctx.gauge("connections", self.conn.connected_peers().len() as u64);
        self.round = round;
        self.attempt = 0;
        self.round_start = ctx.now();
        self.best_proposal = None;
        self.blocks_by_hash.clear();
        self.soft_voted_attempt = None;
        self.soft_votes.clear();
        self.cert_voted = None;
        self.cert_votes.clear();
        // Block-time pacing: proposals for the round go out one round
        // interval after the previous round committed.
        ctx.set_timer(self.config.round_interval, AlgorandTimer::Begin { round });
    }

    fn start_attempt(&mut self, ctx: &mut Ctx<'_, Self>) {
        ctx.span("sortition");
        let (round, attempt) = (self.round, self.attempt);
        if sortition::is_proposer(
            self.seed,
            round,
            attempt,
            self.id,
            self.config.proposer_permille,
        ) {
            let txs = self.pool.take_ready(self.config.max_block_txs);
            let parent = self.chain.last().map(Block::hash).unwrap_or(Hash32::ZERO);
            let block = Block::new(parent, round, self.id, txs);
            let priority = sortition::priority(self.seed, round, attempt, self.id);
            let msg = AlgorandMsg::Proposal {
                round,
                attempt,
                priority,
                block: block.clone(),
            };
            ctx.multicast(self.conn.connected_peers(), msg);
            self.accept_proposal(round, priority, block, ctx);
        }
        // Recovery attempts also retransmit our cert vote so rejoining
        // nodes can assemble the quorum.
        if attempt > 0 {
            if let Some(hash) = self.cert_voted {
                let msg = AlgorandMsg::CertVote { round, hash };
                ctx.multicast(self.conn.connected_peers(), msg);
            }
            // Re-share the best proposal for peers that missed it.
            if let Some((priority, hash)) = self.best_proposal {
                if let Some(block) = self.blocks_by_hash.get(&hash) {
                    let msg = AlgorandMsg::Proposal {
                        round,
                        attempt,
                        priority,
                        block: block.clone(),
                    };
                    ctx.multicast(self.conn.connected_peers(), msg);
                }
            }
        }
        ctx.set_timer(self.dyn_filter, AlgorandTimer::Filter { round, attempt });
        ctx.set_timer(
            self.config.attempt_timeout,
            AlgorandTimer::Attempt { round, attempt },
        );
    }

    fn accept_proposal(
        &mut self,
        round: u64,
        priority: u64,
        block: Block,
        ctx: &mut Ctx<'_, Self>,
    ) {
        if round != self.round {
            return;
        }
        let hash = block.hash();
        self.blocks_by_hash.insert(hash, block);
        match self.best_proposal {
            Some((best, _)) if best <= priority => {}
            _ => self.best_proposal = Some((priority, hash)),
        }
        // Fast path: once the round's expected (globally best-priority)
        // proposer's block arrived there is nothing better to wait for.
        // Disabled while the timing parameters are reset (conservative
        // rounds after a slow round).
        if self.attempt == 0
            && self.round > self.conservative_until
            && self.soft_voted_attempt.is_none()
        {
            if let Some(expected) = self.expected_proposer() {
                let expected_priority = sortition::priority(self.seed, self.round, 0, expected);
                if priority == expected_priority {
                    self.soft_vote(ctx);
                }
            }
        }
    }

    /// The globally best-priority proposer of the current round's first
    /// attempt (crashed nodes included — the schedule cannot know).
    fn expected_proposer(&self) -> Option<NodeId> {
        sortition::best_proposer(
            self.seed,
            self.round,
            0,
            self.n,
            self.config.proposer_permille,
        )
    }

    fn soft_vote(&mut self, ctx: &mut Ctx<'_, Self>) {
        let Some((_, hash)) = self.best_proposal else {
            return;
        };
        if self.soft_voted_attempt == Some(self.attempt) {
            return;
        }
        self.soft_voted_attempt = Some(self.attempt);
        ctx.span("soft-vote");
        let round = self.round;
        ctx.multicast(
            self.conn.connected_peers(),
            AlgorandMsg::SoftVote { round, hash },
        );
        self.record_soft_vote(self.id, hash, ctx);
    }

    fn record_soft_vote(&mut self, from: NodeId, hash: Hash32, ctx: &mut Ctx<'_, Self>) {
        let votes = self.soft_votes.entry(hash).or_default();
        votes.insert(from);
        if votes.len() >= self.quorum() && self.cert_voted.is_none() {
            // Cert votes are locked for the round: a node certifies at
            // most one block per round, which keeps two quorums from
            // forming on different blocks.
            self.cert_voted = Some(hash);
            ctx.span("cert-vote");
            let round = self.round;
            ctx.multicast(
                self.conn.connected_peers(),
                AlgorandMsg::CertVote { round, hash },
            );
            self.record_cert_vote(self.id, hash, ctx);
        }
    }

    fn record_cert_vote(&mut self, from: NodeId, hash: Hash32, ctx: &mut Ctx<'_, Self>) {
        let votes = self.cert_votes.entry(hash).or_default();
        votes.insert(from);
        if votes.len() >= self.quorum() {
            if let Some(block) = self.blocks_by_hash.get(&hash).cloned() {
                self.commit_block(block, ctx);
            } else {
                ctx.send(
                    from,
                    AlgorandMsg::SyncRequest {
                        from_height: self.chain_height() + 1,
                    },
                );
            }
        }
    }

    fn commit_block(&mut self, block: Block, ctx: &mut Ctx<'_, Self>) {
        debug_assert_eq!(block.height(), self.chain_height() + 1);
        for tx in block.txs() {
            self.pool.mark_committed(tx.from(), tx.nonce() + 1);
        }
        // Dynamic round time: fast first-attempt rounds shrink the filter
        // timeout; rounds that needed recovery reset it to the default.
        if self.attempt == 0 {
            self.dyn_filter = self
                .dyn_filter
                .mul_f64(self.config.filter_shrink_permille as f64 / 1000.0)
                .max(self.config.min_filter);
        } else {
            self.slow_rounds += 1;
            self.dyn_filter = self.config.default_filter;
        }
        let cost = self.config.exec_per_block + self.config.exec_per_tx * block.len() as u64;
        let start = self.exec_busy_until.max(ctx.now());
        let done_at = start + cost;
        self.exec_busy_until = done_at;
        let height = block.height();
        self.exec_queue.push((height, done_at));
        ctx.gauge("exec_backlog", self.exec_queue.len() as u64);
        ctx.set_timer(done_at - ctx.now(), AlgorandTimer::ExecDone);
        self.chain.push(block);
        self.enter_round(height + 1, ctx);
    }

    fn drain_executor(&mut self, ctx: &mut Ctx<'_, Self>) {
        let now = ctx.now();
        while let Some(pos) = self.exec_queue.iter().position(|(_, at)| *at <= now) {
            let (height, _) = self.exec_queue.remove(pos);
            if height != self.executed_height + 1 {
                continue;
            }
            let block = self.chain[(height - 1) as usize].clone();
            for tx in block.txs() {
                if let Ok(id) = self.ledger.apply(tx) {
                    ctx.commit(id);
                }
            }
            self.executed_height = height;
        }
    }

    fn handle_sync_request(&mut self, from: NodeId, from_height: u64, ctx: &mut Ctx<'_, Self>) {
        if from_height > self.chain_height() || from_height == 0 {
            return;
        }
        let start = (from_height - 1) as usize;
        let end = (start + 30).min(self.chain.len());
        ctx.send(
            from,
            AlgorandMsg::SyncResponse {
                blocks: self.chain[start..end].to_vec(),
            },
        );
    }

    fn handle_sync_response(&mut self, from: NodeId, blocks: Vec<Block>, ctx: &mut Ctx<'_, Self>) {
        let mut advanced = false;
        for block in blocks {
            if block.height() == self.chain_height() + 1 {
                for tx in block.txs() {
                    self.pool.mark_committed(tx.from(), tx.nonce() + 1);
                }
                let cost =
                    self.config.exec_per_block + self.config.exec_per_tx * block.len() as u64;
                let start = self.exec_busy_until.max(ctx.now());
                let done_at = start + cost;
                self.exec_busy_until = done_at;
                self.exec_queue.push((block.height(), done_at));
                ctx.set_timer(done_at - ctx.now(), AlgorandTimer::ExecDone);
                self.chain.push(block);
                advanced = true;
            }
        }
        if advanced {
            self.enter_round(self.chain_height() + 1, ctx);
            ctx.send(
                from,
                AlgorandMsg::SyncRequest {
                    from_height: self.chain_height() + 1,
                },
            );
        }
    }

    fn run_conn_tick(&mut self, ctx: &mut Ctx<'_, Self>) {
        for action in self.conn.tick(ctx.now()) {
            match action {
                ConnAction::SendHeartbeat(peer) => ctx.send(peer, AlgorandMsg::Heartbeat),
                ConnAction::SendDial(peer) => ctx.send(peer, AlgorandMsg::Dial),
                ConnAction::Disconnected(_) => {}
            }
        }
        ctx.set_timer(self.config.conn_tick, AlgorandTimer::ConnTick);
    }

    fn on_reconnected(&mut self, peer: NodeId, ctx: &mut Ctx<'_, Self>) {
        ctx.send(
            peer,
            AlgorandMsg::SyncRequest {
                from_height: self.chain_height() + 1,
            },
        );
    }
}

impl Protocol for AlgorandNode {
    type Msg = AlgorandMsg;
    type Request = Transaction;
    type Commit = TxId;
    type Timer = AlgorandTimer;
    type Config = AlgorandConfig;

    fn new(id: NodeId, n: usize, config: &AlgorandConfig, ctx: &mut Ctx<'_, Self>) -> Self {
        let mut node = AlgorandNode {
            id,
            n,
            config: config.clone(),
            seed: 0x5eed_a190_04a7_d000,
            chain: Vec::new(),
            ledger: if config.model_contention {
                Ledger::with_lazy_balance(u64::MAX / 512)
            } else {
                Ledger::with_uniform_balance(256, u64::MAX / 512)
            },
            executed_height: 0,
            round: 0,
            attempt: 0,
            round_start: SimTime::ZERO,
            dyn_filter: config.default_filter,
            best_proposal: None,
            blocks_by_hash: BTreeMap::new(),
            soft_voted_attempt: None,
            soft_votes: BTreeMap::new(),
            cert_voted: None,
            cert_votes: BTreeMap::new(),
            conservative_until: 0,
            slow_rounds: 0,
            exec_busy_until: SimTime::ZERO,
            exec_queue: Vec::new(),
            pool: AccountPool::new(config.pool_capacity),
            conn: ConnectionManager::new(id, n, config.conn),
        };
        node.enter_round(1, ctx);
        ctx.set_timer(node.config.conn_tick, AlgorandTimer::ConnTick);
        ctx.set_timer(node.config.pull_interval, AlgorandTimer::PullTick);
        node
    }

    fn on_message(&mut self, from: NodeId, msg: AlgorandMsg, ctx: &mut Ctx<'_, Self>) {
        if self.conn.on_heard(from, ctx.now()) {
            self.on_reconnected(from, ctx);
        }
        match msg {
            AlgorandMsg::TxGossip(tx) => {
                self.pool.insert(tx);
            }
            AlgorandMsg::Proposal {
                round,
                attempt: _,
                priority,
                block,
            } => {
                if round > self.round {
                    ctx.send(
                        from,
                        AlgorandMsg::SyncRequest {
                            from_height: self.chain_height() + 1,
                        },
                    );
                    return;
                }
                self.accept_proposal(round, priority, block, ctx);
            }
            AlgorandMsg::SoftVote { round, hash } => {
                if round == self.round {
                    self.record_soft_vote(from, hash, ctx);
                } else if round > self.round {
                    ctx.send(
                        from,
                        AlgorandMsg::SyncRequest {
                            from_height: self.chain_height() + 1,
                        },
                    );
                }
            }
            AlgorandMsg::CertVote { round, hash } => {
                if round == self.round {
                    self.record_cert_vote(from, hash, ctx);
                } else if round > self.round {
                    ctx.send(
                        from,
                        AlgorandMsg::SyncRequest {
                            from_height: self.chain_height() + 1,
                        },
                    );
                }
            }
            AlgorandMsg::SyncRequest { from_height } => {
                self.handle_sync_request(from, from_height, ctx);
            }
            AlgorandMsg::SyncResponse { blocks } => {
                self.handle_sync_response(from, blocks, ctx);
            }
            AlgorandMsg::PullRequest { frontier } => {
                let txs = self.pool.missing_for(&frontier, self.config.pull_batch);
                if !txs.is_empty() {
                    ctx.send(from, AlgorandMsg::PullResponse { txs });
                }
            }
            AlgorandMsg::PullResponse { txs } => {
                for tx in txs {
                    self.pool.insert(tx);
                }
            }
            AlgorandMsg::Heartbeat => {}
            AlgorandMsg::Dial => ctx.send(from, AlgorandMsg::DialAck),
            AlgorandMsg::DialAck => {}
        }
    }

    fn on_timer(&mut self, timer: AlgorandTimer, ctx: &mut Ctx<'_, Self>) {
        match timer {
            AlgorandTimer::Begin { round } => {
                if round == self.round && self.attempt == 0 && self.soft_voted_attempt.is_none() {
                    self.start_attempt(ctx);
                }
            }
            AlgorandTimer::Filter { round, attempt } => {
                if round == self.round && attempt == self.attempt {
                    // Slow round: the expected proposer's block never
                    // arrived while the fast path was armed — reset the
                    // dynamic timing parameters to their defaults.
                    if attempt == 0
                        && self.round > self.conservative_until
                        && self.soft_voted_attempt.is_none()
                    {
                        if let Some(expected) = self.expected_proposer() {
                            let expected_priority =
                                sortition::priority(self.seed, round, 0, expected);
                            let got_expected = self
                                .best_proposal
                                .map(|(p, _)| p == expected_priority)
                                .unwrap_or(false);
                            if !got_expected {
                                self.dyn_filter = self.config.default_filter;
                                self.conservative_until =
                                    self.round + self.config.conservative_rounds;
                                self.slow_rounds += 1;
                            }
                        }
                    }
                    self.soft_vote(ctx);
                }
            }
            AlgorandTimer::Attempt { round, attempt } => {
                if round == self.round && attempt == self.attempt {
                    // Recovery: reset the dynamic timing parameters to
                    // their defaults and re-run sortition.
                    self.dyn_filter = self.config.default_filter;
                    self.attempt += 1;
                    self.start_attempt(ctx);
                }
            }
            AlgorandTimer::ExecDone => self.drain_executor(ctx),
            AlgorandTimer::PullTick => {
                // Pull gossip (paper §2): ask one random connected peer
                // for transactions we are missing, repairing push-gossip
                // losses (crashed senders, partitions, restarts).
                ctx.set_timer(self.config.pull_interval, AlgorandTimer::PullTick);
                let peers = self.conn.connected_peers();
                if !peers.is_empty() {
                    let peer = *ctx.rng().pick(&peers);
                    let frontier = self.pool.frontier();
                    ctx.send(peer, AlgorandMsg::PullRequest { frontier });
                }
            }
            AlgorandTimer::ConnTick => self.run_conn_tick(ctx),
        }
    }

    fn on_request(&mut self, tx: Transaction, ctx: &mut Ctx<'_, Self>) {
        if self.pool.insert(tx) {
            ctx.multicast(self.conn.connected_peers(), AlgorandMsg::TxGossip(tx));
        }
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.pool.clear_pending();
        self.exec_queue.clear();
        self.exec_busy_until = ctx.now();
        self.dyn_filter = self.config.default_filter;
        self.blocks_by_hash.clear();
        for height in self.executed_height + 1..=self.chain_height() {
            let txs_len = self.chain[(height - 1) as usize].len();
            let cost = self.config.exec_per_block + self.config.exec_per_tx * txs_len as u64;
            let start = self.exec_busy_until.max(ctx.now());
            let done_at = start + cost;
            self.exec_busy_until = done_at;
            self.exec_queue.push((height, done_at));
            ctx.set_timer(done_at - ctx.now(), AlgorandTimer::ExecDone);
        }
        self.conn.redial_all(ctx.now());
        self.enter_round(self.chain_height() + 1, ctx);
        ctx.set_timer(self.config.conn_tick, AlgorandTimer::ConnTick);
        ctx.set_timer(self.config.pull_interval, AlgorandTimer::PullTick);
        self.run_conn_tick(ctx);
        ctx.multicast(
            self.conn.connected_peers(),
            AlgorandMsg::SyncRequest {
                from_height: self.chain_height() + 1,
            },
        );
    }

    fn contention_stats(&self) -> ContentionStats {
        ContentionStats {
            pool_evictions: self.pool.rejected_full(),
            pool_replacements: self.pool.rejected_conflict(),
            ..ContentionStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabl_sim::{PartitionRule, Simulation};
    use stabl_types::AccountId;
    use std::collections::HashSet;

    fn sim(n: usize, seed: u64) -> Simulation<AlgorandNode> {
        Simulation::new(n, seed, AlgorandConfig::default())
    }

    fn submit_stream(
        sim: &mut Simulation<AlgorandNode>,
        accounts: u32,
        tps: u64,
        from: u64,
        to: u64,
    ) {
        let targets = (sim.n() as u64 / 2).max(1);
        let period_us = 1_000_000 / tps;
        let mut nonces = vec![0u64; accounts as usize];
        let mut at = SimTime::from_secs(from);
        let mut k = 0u64;
        while at < SimTime::from_secs(to) {
            let acct = (k % accounts as u64) as u32;
            let tx = Transaction::transfer(
                AccountId::new(acct),
                nonces[acct as usize],
                AccountId::new(200 + acct),
                1,
            );
            nonces[acct as usize] += 1;
            sim.schedule_request(at, NodeId::new((k % targets) as u32), tx);
            at += SimDuration::from_micros(period_us);
            k += 1;
        }
    }

    fn unique_commits_at(sim: &Simulation<AlgorandNode>, node: u32) -> usize {
        sim.commits()
            .iter()
            .filter(|c| c.node == NodeId::new(node))
            .map(|c| c.commit)
            .collect::<HashSet<TxId>>()
            .len()
    }

    #[test]
    fn commits_offered_load_in_baseline() {
        let mut s = sim(10, 1);
        submit_stream(&mut s, 10, 100, 1, 11);
        s.run_until(SimTime::from_secs(25));
        assert_eq!(unique_commits_at(&s, 0), 1000);
    }

    #[test]
    fn dynamic_filter_shrinks_in_steady_state() {
        let mut s = sim(10, 2);
        s.run_until(SimTime::from_secs(60));
        let node = s.node(NodeId::new(0));
        assert!(
            node.current_filter() < AlgorandConfig::default().default_filter,
            "filter should have adapted below the default, is {}",
            node.current_filter()
        );
        assert!(node.chain_height() > 20, "rounds keep turning without load");
    }

    #[test]
    fn tolerates_one_crash_with_spikes() {
        let mut s = sim(10, 3);
        submit_stream(&mut s, 10, 100, 1, 40);
        s.schedule_crash(SimTime::from_secs(10), NodeId::new(5)); // f = t = 1
        s.run_until(SimTime::from_secs(70));
        assert_eq!(
            unique_commits_at(&s, 0),
            3900,
            "all load commits with f = t"
        );
        // The crashed node keeps being selected by sortition, so some
        // rounds need recovery attempts (the paper's periodic resets).
        assert!(
            s.node(NodeId::new(0)).slow_rounds() > 0,
            "expected recovery rounds"
        );
    }

    #[test]
    fn stalls_with_two_crashes_then_recovers_fast() {
        let mut s = sim(10, 4);
        submit_stream(&mut s, 10, 100, 1, 60);
        for i in 5..7u32 {
            s.schedule_crash(SimTime::from_secs(10), NodeId::new(i)); // f = t + 1
            s.schedule_restart(SimTime::from_secs(40), NodeId::new(i));
        }
        s.run_until(SimTime::from_secs(90));
        let during = s
            .commits()
            .iter()
            .filter(|c| c.time > SimTime::from_secs(15) && c.time < SimTime::from_secs(40))
            .count();
        assert_eq!(
            during, 0,
            "20% offline exceeds Algorand's liveness threshold"
        );
        // Backlog clears within roughly ten seconds of the restart.
        let by_55: HashSet<TxId> = s
            .commits()
            .iter()
            .filter(|c| c.node == NodeId::new(0) && c.time < SimTime::from_secs(55))
            .map(|c| c.commit)
            .collect();
        assert!(
            by_55.len() >= 3500,
            "catch-up burst expected, got {}",
            by_55.len()
        );
        assert_eq!(unique_commits_at(&s, 0), 5900);
    }

    #[test]
    fn recovers_from_partition_slowly() {
        let mut s = sim(10, 5);
        submit_stream(&mut s, 10, 100, 1, 120);
        let isolated: Vec<NodeId> = (5..7u32).map(NodeId::new).collect();
        s.schedule_partition(
            SimTime::from_secs(10),
            SimTime::from_secs(45),
            PartitionRule::isolate(isolated, 10),
        );
        s.run_until(SimTime::from_secs(240));
        assert_eq!(
            unique_commits_at(&s, 0),
            11900,
            "all load commits eventually"
        );
        let right_after = s
            .commits()
            .iter()
            .filter(|c| c.time > SimTime::from_secs(46) && c.time < SimTime::from_secs(60))
            .count();
        assert_eq!(right_after, 0, "reconnection backoff delays recovery");
    }

    #[test]
    fn chains_are_consistent_across_nodes() {
        let mut s = sim(10, 6);
        submit_stream(&mut s, 10, 100, 1, 20);
        s.schedule_crash(SimTime::from_secs(8), NodeId::new(9));
        s.run_until(SimTime::from_secs(40));
        // Compare executed ledgers: all alive nodes must have executed
        // the same number of transactions (replica consistency).
        let executed: HashSet<u64> = (0..9u32)
            .map(|i| s.node(NodeId::new(i)).ledger().executed())
            .collect();
        assert_eq!(executed.len(), 1, "replicas diverged: {executed:?}");
    }

    #[test]
    fn pull_gossip_repairs_missing_transactions() {
        // Node 9 is partitioned while a transaction spreads by push
        // gossip; after healing, pull gossip delivers it even though the
        // push broadcast is long gone.
        let mut s = sim(10, 14);
        s.schedule_partition(
            SimTime::from_secs(1),
            SimTime::from_secs(4),
            PartitionRule::isolate([NodeId::new(9)], 10),
        );
        // Submit during the partition; stop rounds from committing it
        // away before the heal by partitioning enough nodes? Instead,
        // check the pull path directly: node 9 rejoins and must learn
        // pool state within a few pull rounds even if no block carries
        // the transaction to it first.
        let tx = Transaction::transfer(AccountId::new(0), 0, AccountId::new(1), 1);
        s.schedule_request(SimTime::from_secs(2), NodeId::new(0), tx);
        s.run_until(SimTime::from_secs(20));
        // The transaction committed network-wide; node 9 caught up via
        // sync or pull and executed it exactly once.
        let commits = s
            .commits()
            .iter()
            .filter(|c| c.node == NodeId::new(9) && c.commit == tx.id())
            .count();
        assert_eq!(commits, 1);
    }

    #[test]
    fn deterministic_runs() {
        let run = |seed| {
            let mut s = sim(4, seed);
            submit_stream(&mut s, 4, 50, 1, 5);
            s.run_until(SimTime::from_secs(15));
            s.commits()
                .iter()
                .map(|c| (c.time.as_micros(), c.node.as_u32()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
    }
}
