//! A minimal, dependency-free stand-in for the `serde_json` crate,
//! vendored because this build environment has no access to crates.io.
//!
//! Renders the vendored `serde` [`Content`](serde::Content) tree to JSON
//! text (compact and pretty) and parses JSON text back into it. Output is
//! deterministic: map entries keep insertion order and floats print in
//! Rust's shortest round-trip form.

#![forbid(unsafe_code)]

use std::fmt;

use serde::{Content, Deserialize, Serialize};

/// The dynamically-typed JSON value — the vendored serde content tree.
pub type Value = Content;

/// Error raised by JSON parsing (and, for API compatibility, carried by
/// the serialisation entry points, which cannot themselves fail).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl fmt::Display) -> Error {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Serialises a value to compact JSON.
///
/// # Errors
///
/// Never fails for the supported data shapes; the `Result` mirrors the
/// real `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_content(), &mut out);
    Ok(out)
}

/// Serialises a value to 2-space-indented JSON.
///
/// # Errors
///
/// Never fails for the supported data shapes.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_content(), 0, &mut out);
    Ok(out)
}

/// Converts any serialisable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_content()
}

/// Parses JSON text into any deserialisable type.
///
/// # Errors
///
/// Fails on malformed JSON or on a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_content(&value).map_err(Error::new)
}

/// Builds a [`Value`] from JSON-like syntax: `json!({ "key": expr, ... })`,
/// `json!([ ... ])`, `json!(null)` or `json!(expr)` for any serialisable
/// expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($element:expr),* $(,)? ]) => {
        $crate::Value::Seq(::std::vec![ $($crate::to_value(&$element)),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Map(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$value)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn write_compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => write_float(*v, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(key, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(value: &Value, indent: usize, out: &mut String) {
    match value {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_escaped(key, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(levels: usize, out: &mut String) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_float(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{:?}` is Rust's shortest round-trip form ("2.0", "0.1",
        // "1e300") — stable and reparseable.
        out.push_str(&format!("{v:?}"));
    } else {
        // serde_json serialises non-finite floats as null.
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", parser.pos)));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            b't' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `]`, found `{}`",
                                other as char
                            )));
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_whitespace();
                    let key = self.string()?;
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}`, found `{}`",
                                other as char
                            )));
                        }
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("lone surrogate"));
                                }
                                let second = self.hex4()?;
                                0x10000 + ((first - 0xD800) << 10) + (second.wrapping_sub(0xDC00))
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )));
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    self.pos = start + len;
                    let slice = self
                        .bytes
                        .get(start..self.pos)
                        .ok_or_else(|| Error::new("truncated UTF-8"))?;
                    out.push_str(
                        std::str::from_utf8(slice).map_err(|_| Error::new("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        self.pos += 4;
        let text = std::str::from_utf8(slice).map_err(|_| Error::new("invalid \\u escape"))?;
        u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("expected a number at byte {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<i64>()
                .map(|v| Value::I64(-v))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_roundtrip() {
        let value = json!({
            "name": "stabl",
            "score": 2.5,
            "missing": Option::<f64>::None,
            "items": [1, 2, 3],
            "nested": json!({"ok": true}),
        });
        let compact = to_string(&value).unwrap();
        assert_eq!(
            compact,
            r#"{"name":"stabl","score":2.5,"missing":null,"items":[1,2,3],"nested":{"ok":true}}"#
        );
        let parsed: Value = from_str(&compact).unwrap();
        assert_eq!(parsed, value);
        let pretty = to_string_pretty(&value).unwrap();
        let reparsed: Value = from_str(&pretty).unwrap();
        assert_eq!(reparsed, value);
    }

    #[test]
    fn floats_print_shortest_roundtrip() {
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        let back: f64 = from_str("0.1").unwrap();
        assert_eq!(back, 0.1);
    }

    #[test]
    fn string_escapes() {
        let s = "line\nquote\"backslash\\tab\tunicode ∞".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn negative_and_large_numbers() {
        let back: i64 = from_str("-42").unwrap();
        assert_eq!(back, -42);
        let big: f64 = from_str("1e300").unwrap();
        assert_eq!(big, 1e300);
        let exact: u64 = from_str(&u64::MAX.to_string()).unwrap();
        assert_eq!(exact, u64::MAX);
    }
}
