//! A minimal, dependency-free stand-in for the `smallvec` crate,
//! vendored because this build environment has no access to crates.io.
//!
//! Provides [`SmallVec<T, N>`]: a growable vector that stores up to `N`
//! elements inline (no heap allocation) and transparently spills to a
//! `Vec<T>` beyond that. Unlike the real crate, the capacity is a plain
//! const generic (`SmallVec<T, 8>` instead of `SmallVec<[T; 8]>`) and
//! the inline storage uses safe `Option<T>` slots rather than raw
//! uninitialised memory — the API subset this workspace uses behaves
//! identically.
//!
//! The point of the type is the fanout pattern in the simulation
//! kernel's hot paths: short, bounded bursts (multicast target lists,
//! calendar-queue bucket entries) stay allocation-free, while the rare
//! long burst degrades gracefully to a heap vector.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::iter::FromIterator;

/// A vector storing up to `N` elements inline before spilling to the
/// heap.
///
/// # Examples
///
/// ```
/// use smallvec::SmallVec;
///
/// let mut v: SmallVec<u32, 4> = SmallVec::new();
/// for x in 0..3 {
///     v.push(x);
/// }
/// assert_eq!(v.len(), 3);
/// assert!(!v.spilled());
/// v.extend(3..10);
/// assert!(v.spilled());
/// assert_eq!(v.into_iter().collect::<Vec<_>>(), (0..10).collect::<Vec<_>>());
/// ```
pub struct SmallVec<T, const N: usize> {
    repr: Repr<T, N>,
}

enum Repr<T, const N: usize> {
    Inline { len: usize, slots: [Option<T>; N] },
    Heap(Vec<T>),
}

impl<T, const N: usize> SmallVec<T, N> {
    /// An empty vector using only inline storage.
    pub fn new() -> SmallVec<T, N> {
        SmallVec {
            repr: Repr::Inline {
                len: 0,
                slots: std::array::from_fn(|_| None),
            },
        }
    }

    /// The number of elements.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len,
            Repr::Heap(v) => v.len(),
        }
    }

    /// `true` if the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` once the vector has overflowed its inline capacity onto
    /// the heap.
    pub fn spilled(&self) -> bool {
        matches!(self.repr, Repr::Heap(_))
    }

    /// Appends `value`, spilling to the heap when the inline buffer is
    /// full.
    pub fn push(&mut self, value: T) {
        match &mut self.repr {
            Repr::Inline { len, slots } => {
                if *len < N {
                    slots[*len] = Some(value);
                    *len += 1;
                } else {
                    let mut heap: Vec<T> = Vec::with_capacity(N * 2);
                    heap.extend(slots.iter_mut().filter_map(Option::take));
                    heap.push(value);
                    self.repr = Repr::Heap(heap);
                }
            }
            Repr::Heap(v) => v.push(value),
        }
    }

    /// Removes and returns the last element, if any.
    pub fn pop(&mut self) -> Option<T> {
        match &mut self.repr {
            Repr::Inline { len, slots } => {
                if *len == 0 {
                    None
                } else {
                    *len -= 1;
                    slots[*len].take()
                }
            }
            Repr::Heap(v) => v.pop(),
        }
    }

    /// Drops every element, keeping the storage mode.
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Inline { len, slots } => {
                for slot in slots.iter_mut().take(*len) {
                    *slot = None;
                }
                *len = 0;
            }
            Repr::Heap(v) => v.clear(),
        }
    }

    /// Iterates over the elements by reference, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        let (inline, heap): (&[Option<T>], &[T]) = match &self.repr {
            Repr::Inline { len, slots } => (&slots[..*len], &[]),
            Repr::Heap(v) => (&[], v.as_slice()),
        };
        inline.iter().filter_map(Option::as_ref).chain(heap.iter())
    }
}

impl<T, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        SmallVec::new()
    }
}

impl<T: Clone, const N: usize> Clone for SmallVec<T, N> {
    fn clone(&self) -> Self {
        self.iter().cloned().collect()
    }
}

impl<T: fmt::Debug, const N: usize> fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T, const N: usize> Extend<T> for SmallVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for value in iter {
            self.push(value);
        }
    }
}

impl<T, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = SmallVec::new();
        v.extend(iter);
        v
    }
}

/// Owning iterator over a [`SmallVec`], in insertion order.
pub struct IntoIter<T, const N: usize> {
    repr: IntoIterRepr<T, N>,
}

enum IntoIterRepr<T, const N: usize> {
    Inline {
        next: usize,
        len: usize,
        slots: [Option<T>; N],
    },
    Heap(std::vec::IntoIter<T>),
}

impl<T, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        match &mut self.repr {
            IntoIterRepr::Inline { next, len, slots } => {
                if next < len {
                    let value = slots[*next].take();
                    *next += 1;
                    value
                } else {
                    None
                }
            }
            IntoIterRepr::Heap(v) => v.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = match &self.repr {
            IntoIterRepr::Inline { next, len, .. } => len - next,
            IntoIterRepr::Heap(v) => return v.size_hint(),
        };
        (remaining, Some(remaining))
    }
}

impl<T, const N: usize> IntoIterator for SmallVec<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;

    fn into_iter(self) -> IntoIter<T, N> {
        IntoIter {
            repr: match self.repr {
                Repr::Inline { len, slots } => IntoIterRepr::Inline {
                    next: 0,
                    len,
                    slots,
                },
                Repr::Heap(v) => IntoIterRepr::Heap(v.into_iter()),
            },
        }
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = Box<dyn Iterator<Item = &'a T> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_within_capacity() {
        let mut v: SmallVec<u64, 4> = SmallVec::new();
        for x in 0..4 {
            v.push(x);
        }
        assert!(!v.spilled());
        assert_eq!(v.len(), 4);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn spills_beyond_capacity_preserving_order() {
        let mut v: SmallVec<u64, 2> = SmallVec::new();
        for x in 0..100 {
            v.push(x);
        }
        assert!(v.spilled());
        assert_eq!(
            v.into_iter().collect::<Vec<_>>(),
            (0..100).collect::<Vec<_>>()
        );
    }

    #[test]
    fn pop_and_clear() {
        let mut v: SmallVec<u8, 3> = SmallVec::new();
        v.push(1);
        v.push(2);
        assert_eq!(v.pop(), Some(2));
        assert_eq!(v.len(), 1);
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.pop(), None);
    }

    #[test]
    fn collects_from_iterator() {
        let v: SmallVec<u32, 4> = (0..10).collect();
        assert!(v.spilled());
        assert_eq!(v.len(), 10);
        let small: SmallVec<u32, 16> = (0..10).collect();
        assert!(!small.spilled());
        assert_eq!(small.iter().sum::<u32>(), 45);
    }

    #[test]
    fn clone_and_debug() {
        let v: SmallVec<u32, 2> = (0..3).collect();
        let w = v.clone();
        assert_eq!(format!("{w:?}"), "[0, 1, 2]");
    }
}
