//! A minimal, dependency-free stand-in for the `proptest` crate, vendored
//! because this build environment has no access to crates.io.
//!
//! It keeps the macro surface (`proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_oneof!`) and the strategy combinators this
//! workspace uses, but replaces proptest's shrinking machinery with plain
//! deterministic sampling: every test draws `ProptestConfig::cases`
//! pseudo-random cases from a seed derived from the test's module path and
//! name, so failures reproduce exactly across runs and machines.

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// Re-exports matching `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// The deterministic generator behind every strategy draw
/// (splitmix64-seeded xorshift).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Derives the per-test generator from the test's location, with an
    /// optional `PROPTEST_RNG_SEED` environment override.
    pub fn for_test(module_path: &str, test_name: &str) -> TestRng {
        if let Ok(seed) = std::env::var("PROPTEST_RNG_SEED") {
            if let Ok(seed) = seed.parse() {
                return TestRng::new(seed);
            }
        }
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in module_path.bytes().chain([b':']).chain(test_name.bytes()) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(hash)
    }

    /// The next 64 uniformly random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniformly random value in `[0, bound)`; 0 for bound 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift keeps the draw unbiased enough for test sampling.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform draw from `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

// ---------------------------------------------------------------------------
// Config and errors
// ---------------------------------------------------------------------------

/// How many cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A failed (or rejected) property case.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
    rejected: bool,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl fmt::Display) -> TestCaseError {
        TestCaseError {
            message: message.to_string(),
            rejected: false,
        }
    }

    /// Creates a rejection (`prop_assume!` miss): the case is skipped,
    /// not failed.
    pub fn reject(message: impl fmt::Display) -> TestCaseError {
        TestCaseError {
            message: message.to_string(),
            rejected: true,
        }
    }

    /// Whether this is a rejection rather than a failure.
    pub fn is_rejection(&self) -> bool {
        self.rejected
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

/// Uniform choice between boxed alternatives (the [`prop_oneof!`]
/// backend).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Builds a union over non-empty alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `alternatives` is empty.
    pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union(alternatives)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let index = rng.below(self.0.len() as u64) as usize;
        self.0[index].sample(rng)
    }
}

// Integer and float ranges as strategies.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Full-domain strategy for a primitive (the `ANY` constants and
/// [`Arbitrary`] backend).
pub struct AnyValue<T>(PhantomData<T>);

impl<T> AnyValue<T> {
    /// The strategy instance (constructible in `const` position).
    pub const NEW: AnyValue<T> = AnyValue(PhantomData);
}

macro_rules! any_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for AnyValue<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
any_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyValue<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.flip()
    }
}

/// Types with a canonical full-domain strategy (backs [`any`]).
pub trait Arbitrary: Sized {
    /// The strategy type `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

macro_rules! arbitrary_impl {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyValue<$t>;
            fn arbitrary() -> AnyValue<$t> {
                AnyValue::NEW
            }
        }
    )*};
}
arbitrary_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// The canonical full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Boolean strategies.
pub mod bool {
    /// Fair coin flips.
    pub const ANY: crate::AnyValue<bool> = crate::AnyValue::NEW;
}

/// Numeric `ANY` constants, one submodule per primitive like the real
/// crate.
pub mod num {
    macro_rules! num_module {
        ($($m:ident : $t:ty),*) => {$(
            /// Full-domain strategy constants for this primitive.
            pub mod $m {
                /// The whole domain, uniform.
                pub const ANY: crate::AnyValue<$t> = crate::AnyValue::NEW;
            }
        )*};
    }
    num_module!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize,
                i8: i8, i16: i16, i32: i32, i64: i64, isize: isize);
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::{BTreeSet, HashSet};
    use std::hash::Hash;
    use std::ops::Range;

    /// A vector whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A B-tree set with *up to* `size` elements (duplicates collapse).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A hash set with *up to* `size` elements (duplicates collapse).
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size }
    }

    /// See [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// `None` a quarter of the time, `Some(inner)` otherwise (matching
    /// the real crate's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// becomes a plain test running `ProptestConfig::cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng =
                $crate::TestRng::for_test(::core::module_path!(), ::core::stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)+
                let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(__err) = __outcome {
                    if __err.is_rejection() {
                        continue;
                    }
                    ::core::panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        __case + 1,
                        __config.cases,
                        ::core::stringify!($name),
                        __err
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Skips the current property case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(::core::concat!(
                "assumption failed: ",
                ::core::stringify!($cond)
            )));
        }
    };
}

/// Fails the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::core::concat!("assertion failed: ", ::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if __left != __right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{}` == `{}` ({:?} vs {:?})",
                ::core::stringify!($left),
                ::core::stringify!($right),
                __left,
                __right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        if __left != __right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "{} ({:?} vs {:?})",
                ::std::format!($($fmt)+),
                __left,
                __right
            )));
        }
    }};
}

/// Fails the current property case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if __left == __right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{}` != `{}` (both {:?})",
                ::core::stringify!($left),
                ::core::stringify!($right),
                __left
            )));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($alternative:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $($crate::Strategy::boxed($alternative)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = Strategy::sample(&(5u64..10), &mut rng);
            assert!((5..10).contains(&v));
            let f = Strategy::sample(&(0.0f64..2.0), &mut rng);
            assert!((0.0..2.0).contains(&f));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let strategy = crate::collection::vec(0u32..100, 0..10);
        let a: Vec<Vec<u32>> = {
            let mut rng = TestRng::new(3);
            (0..20)
                .map(|_| Strategy::sample(&strategy, &mut rng))
                .collect()
        };
        let b: Vec<Vec<u32>> = {
            let mut rng = TestRng::new(3);
            (0..20)
                .map(|_| Strategy::sample(&strategy, &mut rng))
                .collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires patterns, strategies and assertions together.
        #[test]
        fn macro_surface_works(
            xs in crate::collection::vec(0u8..4, 0..8),
            flag in crate::bool::ANY,
            pick in prop_oneof![(0u32..4).prop_map(|v| v * 2), 100u32..101],
        ) {
            prop_assert!(xs.len() < 8);
            prop_assert!(pick % 2 == 0 || pick == 100);
            prop_assert_eq!(flag, flag);
            prop_assert_ne!(xs.len(), 99);
        }
    }
}
