//! A minimal, dependency-free stand-in for the `serde` crate, vendored
//! because this build environment has no access to crates.io.
//!
//! It keeps the *surface syntax* the workspace relies on — the
//! [`Serialize`]/[`Deserialize`] traits, `#[derive(Serialize, Deserialize)]`
//! (via the sibling `serde_derive` stub) and the bound `T: serde::Serialize`
//! — but replaces serde's visitor architecture with a simple self-describing
//! content tree ([`Content`]). The sibling `serde_json` stub renders that
//! tree to JSON text and parses it back.
//!
//! Only the data shapes this workspace uses are supported: named-field
//! structs, the standard scalars, strings, options, vectors, maps with
//! string keys and small tuples.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialised value: the common representation every
/// [`Serialize`] type lowers to and every [`Deserialize`] type is built
/// from.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed (negative) integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered string-keyed map (insertion order is preserved so
    /// serialisation is deterministic).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The entries of a map, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up a map key.
    pub fn get(&self, key: &str) -> Option<&Content> {
        self.as_map()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// A short label for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Error produced while rebuilding a typed value from [`Content`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(message: impl fmt::Display) -> DeError {
        DeError {
            message: message.to_string(),
        }
    }

    fn expected(what: &str, got: &Content) -> DeError {
        DeError::custom(format!("expected {what}, found {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves to a [`Content`] tree.
pub trait Serialize {
    /// The content-tree form of `self`.
    fn to_content(&self) -> Content;
}

/// Types that can be rebuilt from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value, failing on shape mismatches.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Serialize implementations
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(value) => value.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_content(&self) -> Content {
        // Sort for deterministic output.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
    )*};
}
serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize implementations
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! deserialize_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let value = match content {
                    Content::U64(v) => *v,
                    other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(value)
                    .map_err(|_| DeError::custom(format!("{value} out of range")))
            }
        }
    )*};
}
deserialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! deserialize_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let value: i64 = match content {
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| DeError::custom(format!("{v} out of range")))?,
                    Content::I64(v) => *v,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(value)
                    .map_err(|_| DeError::custom(format!("{value} out of range")))
            }
        }
    )*};
}
deserialize_signed!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            // Non-finite floats serialise as null (matching serde_json).
            Content::Null => Ok(f64::NAN),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::expected("sequence", other)),
        }
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => Err(DeError::expected("map", other)),
        }
    }
}

macro_rules! deserialize_tuple {
    ($(($len:literal; $($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::Seq(items) if items.len() == $len => {
                        Ok(($($name::from_content(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected(
                        concat!("sequence of length ", $len),
                        other,
                    )),
                }
            }
        }
    )*};
}
deserialize_tuple! {
    (1; A: 0)
    (2; A: 0, B: 1)
    (3; A: 0, B: 1, C: 2)
    (4; A: 0, B: 1, C: 2, D: 3)
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

/// Support code for the derive macros; not part of the public surface.
pub mod __private {
    use super::{Content, DeError, Deserialize};

    /// Extracts and deserialises field `key` of a map. A missing key is
    /// handed to the target as `null` so `Option` fields default to
    /// `None` while everything else reports the missing field.
    pub fn field<T: Deserialize>(content: &Content, key: &str) -> Result<T, DeError> {
        if content.as_map().is_none() {
            return Err(DeError::expected("map", content));
        }
        match content.get(key) {
            Some(value) => {
                T::from_content(value).map_err(|e| DeError::custom(format!("field `{key}`: {e}")))
            }
            None => T::from_content(&Content::Null)
                .map_err(|_| DeError::custom(format!("missing field `{key}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(u32::from_content(&42u32.to_content()), Ok(42));
        assert_eq!(i64::from_content(&(-7i64).to_content()), Ok(-7));
        assert_eq!(f64::from_content(&2.5f64.to_content()), Ok(2.5));
        assert_eq!(bool::from_content(&true.to_content()), Ok(true));
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn options_and_sequences() {
        let v: Option<f64> = None;
        assert_eq!(v.to_content(), Content::Null);
        assert_eq!(Option::<f64>::from_content(&Content::Null), Ok(None));
        let xs = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        let back = Vec::<(f64, f64)>::from_content(&xs.to_content()).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn missing_field_is_null_for_options() {
        let map = Content::Map(vec![("a".into(), Content::U64(1))]);
        let a: u64 = __private::field(&map, "a").unwrap();
        assert_eq!(a, 1);
        let b: Option<u64> = __private::field(&map, "b").unwrap();
        assert_eq!(b, None);
        assert!(__private::field::<u64>(&map, "b").is_err());
    }
}
