//! `#[derive(Serialize, Deserialize)]` for the vendored `serde` stub.
//!
//! Implemented directly on `proc_macro` token trees (no `syn`/`quote`,
//! which are unavailable offline). Supports exactly the shape this
//! workspace derives on: non-generic structs with named fields. Anything
//! else produces a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (content-tree lowering) for a named-field
/// struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` (content-tree rebuilding) for a
/// named-field struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let parsed = match parse_struct(input) {
        Ok(parsed) => parsed,
        Err(message) => {
            return format!("compile_error!({message:?});").parse().unwrap();
        }
    };
    let name = &parsed.name;
    let code = match mode {
        Mode::Serialize => {
            let entries: String = parsed
                .fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_content(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Map(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Mode::Deserialize => {
            let fields: String = parsed
                .fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::field(__content, {f:?})?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(__content: &::serde::Content)\n\
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok({name} {{ {fields} }})\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

struct Parsed {
    name: String,
    fields: Vec<String>,
}

/// Extracts the struct name and its field names from a derive input.
fn parse_struct(input: TokenStream) -> Result<Parsed, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`) and visibility/other leading
    // keywords until the `struct`/`enum` keyword.
    let mut name = None;
    while let Some(token) = tokens.next() {
        match token {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Consume the attribute group that follows.
                tokens.next();
            }
            TokenTree::Ident(ident) if ident.to_string() == "struct" => {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    _ => return Err("expected a struct name".to_string()),
                }
                break;
            }
            TokenTree::Ident(ident) if ident.to_string() == "enum" => {
                return Err(
                    "the vendored serde_derive only supports structs with named fields".to_string(),
                );
            }
            _ => {}
        }
    }
    let name = name.ok_or("expected a struct definition")?;

    // The next brace group holds the named fields. Generics or tuple
    // structs are out of scope for the stub.
    for token in tokens {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                return Err(format!(
                    "the vendored serde_derive cannot derive for generic struct {name}"
                ));
            }
            TokenTree::Group(group) if group.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(group.stream())?;
                return Ok(Parsed { name, fields });
            }
            TokenTree::Group(group) if group.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "the vendored serde_derive cannot derive for tuple struct {name}"
                ));
            }
            _ => {}
        }
    }
    Err(format!("struct {name} has no braced field list"))
}

/// Collects field names from the body of a named-field struct, skipping
/// attributes, visibility and types (tracking `<...>` nesting so commas
/// inside generic arguments do not split fields).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip field attributes.
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        // Skip visibility (`pub` or `pub(...)`).
        if let Some(TokenTree::Ident(ident)) = tokens.peek() {
            if ident.to_string() == "pub" {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
        }
        match tokens.next() {
            Some(TokenTree::Ident(ident)) => fields.push(ident.to_string()),
            Some(other) => return Err(format!("expected a field name, found `{other}`")),
            None => break,
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err("expected `:` after a field name".to_string()),
        }
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0usize;
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle_depth += 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1);
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    tokens.next();
                    break;
                }
                Some(_) => {
                    tokens.next();
                }
                None => break,
            }
        }
    }
    Ok(fields)
}
