//! A minimal, dependency-free stand-in for the `criterion` crate,
//! vendored because this build environment has no access to crates.io.
//!
//! Keeps the `criterion_group!`/`criterion_main!` macro surface and the
//! `Criterion`/`BenchmarkGroup`/`Bencher` API this workspace's benches
//! use, but replaces criterion's statistical machinery with a simple
//! fixed-sample wall-clock measurement printed per benchmark.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser identity, re-exported from `std`.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// How batched inputs are grouped; only a hint in this stand-in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Times one ungrouped benchmark routine and prints its mean
    /// per-iteration wall-clock time.
    pub fn bench_function<F>(&mut self, id: impl Display, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, &id, self.sample_size, routine);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Times one benchmark routine and prints its mean per-iteration
    /// wall-clock time.
    pub fn bench_function<F>(&mut self, id: impl Display, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), &id, self.sample_size, routine);
        self
    }

    /// Ends the group (a no-op, for API compatibility).
    pub fn finish(self) {}
}

/// Shared measurement loop behind both `bench_function` entry points.
fn run_one<F>(group: Option<&str>, id: &dyn Display, sample_size: usize, mut routine: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        iterations: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    routine(&mut bencher);
    let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iterations.max(1));
    match group {
        Some(name) => println!(
            "{name}/{id}: {per_iter} ns/iter ({} iters)",
            bencher.iterations
        ),
        None => println!("{id}: {per_iter} ns/iter ({} iters)", bencher.iterations),
    }
}

/// Passed to each benchmark closure to drive the timed loop.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Declares a benchmark group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
