//! A minimal, dependency-free stand-in for the `criterion` crate,
//! vendored because this build environment has no access to crates.io.
//!
//! Keeps the `criterion_group!`/`criterion_main!` macro surface and the
//! `Criterion`/`BenchmarkGroup`/`Bencher` API this workspace's benches
//! use, but replaces criterion's statistical machinery with a simple
//! per-iteration wall-clock measurement printed per benchmark.
//!
//! Each iteration is timed individually; both the mean and the minimum
//! are reported. On shared, noisy machines the minimum is the robust
//! estimator (interruptions only ever inflate a sample), so downstream
//! tooling compares minima.
//!
//! Recognised command-line flags (criterion-compatible subset):
//!
//! * `--quick` — divide the sample count by 4 (at least 5 iterations),
//!   for smoke runs in CI.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser identity, re-exported from `std`.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// How batched inputs are grouped; only a hint in this stand-in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// `true` when `--quick` was passed on the command line.
fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Applies `--quick` scaling to a configured sample count.
fn effective_samples(samples: usize) -> usize {
    if quick_mode() {
        (samples / 4).max(5)
    } else {
        samples
    }
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Times one ungrouped benchmark routine and prints its mean and
    /// minimum per-iteration wall-clock time.
    pub fn bench_function<F>(&mut self, id: impl Display, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, &id, effective_samples(self.sample_size), routine);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Times one benchmark routine and prints its mean and minimum
    /// per-iteration wall-clock time.
    pub fn bench_function<F>(&mut self, id: impl Display, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            Some(&self.name),
            &id,
            effective_samples(self.sample_size),
            routine,
        );
        self
    }

    /// Ends the group (a no-op, for API compatibility).
    pub fn finish(self) {}
}

/// Shared measurement loop behind both `bench_function` entry points.
fn run_one<F>(group: Option<&str>, id: &dyn Display, sample_size: usize, mut routine: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        iterations: sample_size as u64,
        samples: Vec::with_capacity(sample_size),
    };
    routine(&mut bencher);
    let iters = bencher.samples.len().max(1) as u128;
    let total: u128 = bencher.samples.iter().map(Duration::as_nanos).sum();
    let mean = total / iters;
    let min = bencher
        .samples
        .iter()
        .map(Duration::as_nanos)
        .min()
        .unwrap_or(0);
    let label = match group {
        Some(name) => format!("{name}/{id}"),
        None => format!("{id}"),
    };
    println!("{label}: {mean} ns/iter (min {min} ns, {iters} iters)");
}

/// Passed to each benchmark closure to drive the timed loop.
pub struct Bencher {
    iterations: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations, one
    /// sample per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a benchmark group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
