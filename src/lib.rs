//! # stabl-suite — the Stabl reproduction workspace
//!
//! Top-level package carrying the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`). The library surface simply
//! re-exports the workspace crates so examples and downstream experiments
//! can depend on one package:
//!
//! * [`stabl`] — sensitivity metric, fault-injection harness, scenarios;
//! * [`stabl_sim`] — the deterministic discrete-event kernel;
//! * [`stabl_types`] — transactions, blocks, ledger, pools;
//! * the five chains: [`stabl_algorand`], [`stabl_aptos`],
//!   [`stabl_avalanche`], [`stabl_redbelly`], [`stabl_solana`].

#![forbid(unsafe_code)]

pub use stabl;
pub use stabl_algorand;
pub use stabl_aptos;
pub use stabl_avalanche;
pub use stabl_redbelly;
pub use stabl_sim;
pub use stabl_solana;
pub use stabl_types;
